(* Region_map: the ANU geometry — partition math, half occupancy,
   disjointness, minimal movement, repartitioning. *)

module RM = Placement.Region_map
module Id = Sharedfs.Server_id
module Set = Hashlib.Unit_interval.Set

let check_int = Alcotest.(check int)
let check_float eps = Alcotest.(check (float eps))
let check_bool = Alcotest.(check bool)

let ids n = List.init n Id.of_int

let assert_healthy t =
  match RM.check_invariants t with
  | [] -> ()
  | violations -> Alcotest.failf "invariants: %s" (String.concat "; " violations)

let test_partition_count () =
  List.iter
    (fun (n, expected) ->
      check_int (Printf.sprintf "p(%d)" n) expected (RM.partition_count_for n))
    [ (1, 2); (2, 4); (3, 8); (4, 8); (5, 16); (8, 16); (9, 32); (16, 32) ];
  Alcotest.check_raises "n=0"
    (Invalid_argument "Region_map.partition_count_for: n must be >= 1")
    (fun () -> ignore (RM.partition_count_for 0))

let test_create_uniform () =
  let t = RM.create ~servers:(ids 5) in
  check_int "partitions" 16 (RM.partitions t);
  check_float 1e-12 "width" (1.0 /. 16.0) (RM.width t);
  assert_healthy t;
  List.iter
    (fun (_, m) -> check_float 1e-9 "uniform share" 0.1 m)
    (RM.measures t);
  check_float 1e-9 "half occupancy" 0.5 (RM.total_measure t);
  (* Every server respects the one-partial-partition discipline. *)
  List.iter
    (fun id ->
      check_bool "<=1 partial" true (RM.partial_partitions t id <= 1))
    (ids 5)

let test_create_single_server () =
  let t = RM.create ~servers:(ids 1) in
  check_int "partitions" 2 (RM.partitions t);
  check_float 1e-9 "measure" 0.5 (RM.measure_of t (Id.of_int 0));
  assert_healthy t

let test_create_rejects_bad_input () =
  Alcotest.check_raises "empty" (Invalid_argument "Region_map.create: no servers")
    (fun () -> ignore (RM.create ~servers:[]));
  Alcotest.check_raises "duplicates"
    (Invalid_argument "Region_map.create: duplicate server ids") (fun () ->
      ignore (RM.create ~servers:[ Id.of_int 1; Id.of_int 1 ]))

let test_locate_total_on_mapped_points () =
  let t = RM.create ~servers:(ids 5) in
  (* Sample densely: every point is either free or owned by exactly
     the server whose region contains it. *)
  for i = 0 to 999 do
    let x = (float_of_int i +. 0.5) /. 1000.0 in
    let owner = RM.locate t x in
    let holders =
      List.filter (fun id -> Set.mem (RM.region t id) x) (ids 5)
    in
    match (owner, holders) with
    | Some o, [ h ] -> check_bool "consistent" true (Id.equal o h)
    | None, [] -> ()
    | Some _, [] -> Alcotest.fail "locate found owner but no region contains x"
    | None, _ :: _ -> Alcotest.fail "region contains x but locate missed it"
    | Some _, _ :: _ :: _ -> Alcotest.fail "overlapping regions"
  done

let test_scale_changes_measures () =
  let t = RM.create ~servers:(ids 4) in
  let targets =
    [ (Id.of_int 0, 0.05); (Id.of_int 1, 0.10); (Id.of_int 2, 0.15);
      (Id.of_int 3, 0.20) ]
  in
  RM.scale t ~targets;
  assert_healthy t;
  check_float 1e-6 "srv0" 0.05 (RM.measure_of t (Id.of_int 0));
  check_float 1e-6 "srv3" 0.20 (RM.measure_of t (Id.of_int 3));
  check_float 1e-6 "total" 0.5 (RM.total_measure t)

let test_scale_normalizes () =
  let t = RM.create ~servers:(ids 2) in
  (* Targets summing to 2.0 are normalized to 0.5. *)
  RM.scale t ~targets:[ (Id.of_int 0, 1.5); (Id.of_int 1, 0.5) ];
  assert_healthy t;
  check_float 1e-6 "ratio preserved" 0.375 (RM.measure_of t (Id.of_int 0));
  check_float 1e-6 "total" 0.5 (RM.total_measure t)

let test_scale_to_zero () =
  let t = RM.create ~servers:(ids 3) in
  RM.scale t
    ~targets:[ (Id.of_int 0, 0.0); (Id.of_int 1, 1.0); (Id.of_int 2, 1.0) ];
  assert_healthy t;
  check_float 1e-6 "zeroed" 0.0 (RM.measure_of t (Id.of_int 0));
  check_float 1e-6 "others" 0.25 (RM.measure_of t (Id.of_int 1))

let test_scale_rejects_mismatched_targets () =
  let t = RM.create ~servers:(ids 3) in
  Alcotest.check_raises "missing server"
    (Invalid_argument "Region_map.scale: targets must cover exactly the servers")
    (fun () ->
      RM.scale t ~targets:[ (Id.of_int 0, 0.5); (Id.of_int 1, 0.5) ])

let test_scale_rejects_all_zero () =
  let t = RM.create ~servers:(ids 2) in
  Alcotest.check_raises "all zero"
    (Invalid_argument "Region_map.scale: all-zero targets") (fun () ->
      RM.scale t ~targets:[ (Id.of_int 0, 0.0); (Id.of_int 1, 0.0) ])

let test_minimal_movement_on_scale () =
  (* Scaling one server down by delta changes ownership over at most
     ~delta + grown measure; untouched servers keep their regions. *)
  let t = RM.create ~servers:(ids 4) in
  let before = List.map (fun id -> (id, RM.region t id)) (ids 4) in
  RM.scale t
    ~targets:
      [ (Id.of_int 0, 0.0625); (Id.of_int 1, 0.15); (Id.of_int 2, 0.125);
        (Id.of_int 3, 0.1625) ];
  assert_healthy t;
  (* Server 2's target equals its current measure: region unchanged. *)
  let r2_before = List.assoc (Id.of_int 2) before in
  check_bool "untouched server keeps region" true
    (Set.equal r2_before (RM.region t (Id.of_int 2)));
  (* The shrunk server keeps a subset of its old region. *)
  let r0_before = List.assoc (Id.of_int 0) before in
  let r0_after = RM.region t (Id.of_int 0) in
  check_float 1e-6 "shrunk is subset" 0.0
    (Set.measure (Set.diff r0_after r0_before))

let test_grow_prefers_own_partial_partition () =
  let t = RM.create ~servers:(ids 2) in
  (* Shrink server 0, then grow it back: it should reclaim space in
     its own partial partition first (region within its old bounds). *)
  let before = RM.region t (Id.of_int 0) in
  RM.scale t ~targets:[ (Id.of_int 0, 0.15); (Id.of_int 1, 0.35) ];
  RM.scale t ~targets:[ (Id.of_int 0, 0.25); (Id.of_int 1, 0.25) ];
  assert_healthy t;
  let after = RM.region t (Id.of_int 0) in
  check_bool "regained original region" true (Set.equal before after)

let test_remove_server_frees_region () =
  let t = RM.create ~servers:(ids 3) in
  RM.remove_server t (Id.of_int 1);
  check_int "two left" 2 (List.length (RM.servers t));
  (* Caller rescales survivors: proportional growth restores 1/2. *)
  RM.scale t ~targets:(RM.measures t);
  assert_healthy t;
  check_float 1e-6 "survivors split" 0.25 (RM.measure_of t (Id.of_int 0))

let test_add_server_no_repartition () =
  let t = RM.create ~servers:(ids 3) in
  (* p(3) = 8 = p(4): adding a fourth server must not repartition. *)
  RM.add_server t (Id.of_int 3) ~target:0.125;
  check_int "partitions unchanged" 8 (RM.partitions t);
  assert_healthy t;
  check_float 1e-6 "newcomer share" 0.125 (RM.measure_of t (Id.of_int 3))

let test_add_server_repartitions () =
  let t = RM.create ~servers:(ids 4) in
  let regions_before = List.map (fun id -> (id, RM.region t id)) (ids 4) in
  (* p(5) = 16 > 8: the unit interval re-partitions, moving no load. *)
  RM.add_server t (Id.of_int 4) ~target:0.1;
  check_int "repartitioned" 16 (RM.partitions t);
  assert_healthy t;
  (* Existing servers shrank proportionally (0.125 -> 0.1 each); what
     remains of each region is a subset of what it had. *)
  List.iter
    (fun (id, before) ->
      let after = RM.region t id in
      check_float 1e-6
        (Format.asprintf "%a subset" Id.pp id)
        0.0
        (Set.measure (Set.diff after before)))
    regions_before;
  check_float 1e-6 "newcomer" 0.1 (RM.measure_of t (Id.of_int 4))

let test_add_duplicate_rejected () =
  let t = RM.create ~servers:(ids 2) in
  Alcotest.check_raises "dup"
    (Invalid_argument "Region_map.add_server: server already present")
    (fun () -> RM.add_server t (Id.of_int 1) ~target:0.1)

let test_failure_recovery_cycle () =
  let t = RM.create ~servers:(ids 5) in
  RM.remove_server t (Id.of_int 2);
  RM.scale t ~targets:(RM.measures t);
  assert_healthy t;
  RM.add_server t (Id.of_int 2) ~target:0.1;
  assert_healthy t;
  check_int "five again" 5 (List.length (RM.servers t));
  check_float 1e-6 "total" 0.5 (RM.total_measure t)

let test_serialization_round_trip () =
  let t = RM.create ~servers:(ids 5) in
  (* Make the geometry non-trivial first. *)
  RM.scale t
    ~targets:
      [ (Id.of_int 0, 0.02); (Id.of_int 1, 0.18); (Id.of_int 2, 0.1);
        (Id.of_int 3, 0.05); (Id.of_int 4, 0.15) ];
  let t' = RM.of_string (RM.to_string t) in
  check_int "partitions" (RM.partitions t) (RM.partitions t');
  assert_healthy t';
  (* Observational equality: same owner for a dense sample of points. *)
  for i = 0 to 999 do
    let x = (float_of_int i +. 0.5) /. 1000.0 in
    check_bool "same locate" true (RM.locate t x = RM.locate t' x)
  done

let test_serialization_rejects_garbage () =
  List.iter
    (fun s ->
      match RM.of_string s with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "accepted %S" s)
    [ ""; "p=0"; "p=8"; "p=8;x:0.0~0.1"; "p=8;0:0.9~0.1"; "nonsense" ]

let test_serialization_rejects_invariant_violations () =
  (* Overlapping regions must not deserialize. *)
  match RM.of_string "p=4;0:0x0p+0~0x1p-2;1:0x1p-3~0x1.8p-2" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "accepted overlapping regions"

(* --- bucket-index locate vs the binary-search oracle --- *)

(* Every interesting abscissa of a map: each segment's lo and hi (and
   one ulp either side), every partition border, and the interval
   edges.  These are exactly the points where the bucket arithmetic
   could disagree with the global binary search. *)
let boundary_points t =
  let nudge x = [ x; Float.pred x; Float.succ x ] in
  let seg_points =
    List.concat_map
      (fun id ->
        List.concat_map
          (fun (s : Hashlib.Unit_interval.seg) -> nudge s.lo @ nudge s.hi)
          (Set.segments (RM.region t id)))
      (RM.servers t)
  in
  let border_points =
    List.concat_map
      (fun j -> nudge (float_of_int j /. float_of_int (RM.partitions t)))
      (List.init (RM.partitions t + 1) Fun.id)
  in
  [ -0.1; 0.0; 1.0; 1.1; Float.pred 1.0 ] @ seg_points @ border_points

let assert_locate_matches_oracle t =
  List.iter
    (fun x ->
      let fast = RM.locate t x in
      let slow = RM.locate_reference t x in
      if fast <> slow then
        Alcotest.failf "locate disagrees with oracle at %h: %s vs %s" x
          (match fast with
          | Some id -> Format.asprintf "%a" Id.pp id
          | None -> "free")
          (match slow with
          | Some id -> Format.asprintf "%a" Id.pp id
          | None -> "free"))
    (boundary_points t)

let test_locate_oracle_on_boundaries () =
  List.iter
    (fun n ->
      let t = RM.create ~servers:(ids n) in
      assert_locate_matches_oracle t;
      (* Uneven geometry: partial partitions in several places. *)
      let targets =
        List.mapi
          (fun i id -> (id, 0.01 +. (float_of_int (i mod 4) *. 0.037)))
          (ids n)
      in
      RM.scale t ~targets;
      assert_locate_matches_oracle t;
      (* Membership churn: remove, rescale, re-add, repartition. *)
      if n > 1 then begin
        RM.remove_server t (Id.of_int 0);
        RM.scale t ~targets:(RM.measures t);
        assert_locate_matches_oracle t;
        RM.add_server t (Id.of_int 0) ~target:(1.0 /. (2.0 *. float_of_int n));
        assert_locate_matches_oracle t
      end)
    [ 1; 2; 3; 5; 8; 16 ]

let test_version_bumps_on_mutation () =
  let t = RM.create ~servers:(ids 3) in
  let v0 = RM.version t in
  ignore (RM.locate t 0.25);
  check_int "reads do not bump" v0 (RM.version t);
  RM.scale t ~targets:[ (Id.of_int 0, 1.0); (Id.of_int 1, 2.0); (Id.of_int 2, 3.0) ];
  check_bool "scale bumps" true (RM.version t > v0);
  let v1 = RM.version t in
  RM.remove_server t (Id.of_int 2);
  check_bool "remove bumps" true (RM.version t > v1);
  let v2 = RM.version t in
  RM.add_server t (Id.of_int 2) ~target:0.1;
  check_bool "add bumps" true (RM.version t > v2)

let prop_locate_matches_oracle_random =
  let gen =
    QCheck.Gen.(
      let* n = 1 -- 10 in
      let* targets = list_size (return n) (float_range 0.01 10.0) in
      let* points = list_size (1 -- 50) (float_range (-0.5) 1.5) in
      return (n, targets, points))
  in
  QCheck.Test.make ~count:200
    ~name:"bucket locate equals binary-search oracle"
    (QCheck.make gen)
    (fun (n, targets, points) ->
      let t = RM.create ~servers:(ids n) in
      RM.scale t ~targets:(List.mapi (fun i m -> (Id.of_int i, m)) targets);
      List.for_all (fun x -> RM.locate t x = RM.locate_reference t x) points
      && List.for_all
           (fun x -> RM.locate t x = RM.locate_reference t x)
           (boundary_points t))

(* Random scaling sequences keep all invariants. *)
let prop_random_scaling_preserves_invariants =
  let gen =
    QCheck.Gen.(
      let* n = 2 -- 8 in
      let* rounds = 1 -- 8 in
      let* targets =
        list_size (return rounds)
          (list_size (return n) (float_range 0.0 10.0))
      in
      return (n, targets))
  in
  QCheck.Test.make ~count:100
    ~name:"random scaling sequences preserve invariants"
    (QCheck.make gen)
    (fun (n, rounds) ->
      let t = RM.create ~servers:(ids n) in
      List.for_all
        (fun raw ->
          let total = List.fold_left ( +. ) 0.0 raw in
          if total <= 0.0 then true
          else begin
            let targets = List.mapi (fun i m -> (Id.of_int i, m)) raw in
            RM.scale t ~targets;
            RM.check_invariants t = []
          end)
        rounds)

let prop_locate_agrees_with_regions =
  QCheck.Test.make ~count:100 ~name:"locate agrees with region membership"
    QCheck.(pair (int_range 1 10) (list (float_bound_exclusive 1.0)))
    (fun (n, points) ->
      let t = RM.create ~servers:(ids n) in
      List.for_all
        (fun x ->
          match RM.locate t x with
          | Some id -> Set.mem (RM.region t id) x
          | None -> not (List.exists (fun id -> Set.mem (RM.region t id) x) (ids n)))
        points)

let suite =
  [
    Alcotest.test_case "partition count" `Quick test_partition_count;
    Alcotest.test_case "create uniform" `Quick test_create_uniform;
    Alcotest.test_case "create single server" `Quick test_create_single_server;
    Alcotest.test_case "create validation" `Quick test_create_rejects_bad_input;
    Alcotest.test_case "locate total" `Quick test_locate_total_on_mapped_points;
    Alcotest.test_case "scale changes measures" `Quick test_scale_changes_measures;
    Alcotest.test_case "scale normalizes" `Quick test_scale_normalizes;
    Alcotest.test_case "scale to zero" `Quick test_scale_to_zero;
    Alcotest.test_case "scale rejects mismatch" `Quick
      test_scale_rejects_mismatched_targets;
    Alcotest.test_case "scale rejects all-zero" `Quick test_scale_rejects_all_zero;
    Alcotest.test_case "minimal movement" `Quick test_minimal_movement_on_scale;
    Alcotest.test_case "grow reclaims own partition" `Quick
      test_grow_prefers_own_partial_partition;
    Alcotest.test_case "remove server" `Quick test_remove_server_frees_region;
    Alcotest.test_case "add without repartition" `Quick
      test_add_server_no_repartition;
    Alcotest.test_case "add repartitions" `Quick test_add_server_repartitions;
    Alcotest.test_case "add duplicate rejected" `Quick test_add_duplicate_rejected;
    Alcotest.test_case "failure/recovery cycle" `Quick test_failure_recovery_cycle;
    Alcotest.test_case "serialization round trip" `Quick
      test_serialization_round_trip;
    Alcotest.test_case "serialization rejects garbage" `Quick
      test_serialization_rejects_garbage;
    Alcotest.test_case "serialization rejects violations" `Quick
      test_serialization_rejects_invariant_violations;
    Alcotest.test_case "locate oracle on boundaries" `Quick
      test_locate_oracle_on_boundaries;
    Alcotest.test_case "version bumps on mutation" `Quick
      test_version_bumps_on_mutation;
    QCheck_alcotest.to_alcotest prop_random_scaling_preserves_invariants;
    QCheck_alcotest.to_alcotest prop_locate_agrees_with_regions;
    QCheck_alcotest.to_alcotest prop_locate_matches_oracle_random;
  ]
