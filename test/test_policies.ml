(* The baselines: simple randomization, round-robin, prescient. *)

open Placement
module Id = Sharedfs.Server_id

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ids n = List.init n Id.of_int

let names n = List.init n (Printf.sprintf "fs-%03d")

let family = Hashlib.Hash_family.create ~seed:77

(* --- simple randomization --- *)

let test_simple_random_deterministic () =
  let a = Simple_random.create ~family ~servers:(ids 4) in
  let b = Simple_random.create ~family ~servers:(ids 4) in
  List.iter
    (fun n ->
      check_bool "same" true
        (Id.equal (Simple_random.locate a n) (Simple_random.locate b n)))
    (names 100)

let test_simple_random_roughly_uniform () =
  let t = Simple_random.create ~family ~servers:(ids 4) in
  let counts = Array.make 4 0 in
  List.iter
    (fun n ->
      let id = Id.to_int (Simple_random.locate t n) in
      counts.(id) <- counts.(id) + 1)
    (names 4000);
  Array.iter
    (fun c -> if c < 800 || c > 1200 then Alcotest.failf "skewed: %d" c)
    counts

let test_simple_random_failure_redirects () =
  let t = Simple_random.create ~family ~servers:(ids 3) in
  let p = Simple_random.policy t in
  p.Policy.server_failed (Id.of_int 1);
  List.iter
    (fun n ->
      check_bool "avoids dead server" false
        (Id.equal (Simple_random.locate t n) (Id.of_int 1)))
    (names 200)

(* --- round-robin --- *)

let test_round_robin_equal_counts () =
  let fs = names 103 in
  let t = Round_robin.create ~servers:(ids 5) ~file_sets:fs () in
  let counts = Array.make 5 0 in
  List.iter
    (fun n ->
      let id = Id.to_int (Round_robin.locate t n) in
      counts.(id) <- counts.(id) + 1)
    fs;
  let mn = Array.fold_left min max_int counts in
  let mx = Array.fold_left max 0 counts in
  check_bool "within one" true (mx - mn <= 1);
  check_int "total" 103 (Array.fold_left ( + ) 0 counts)

let test_round_robin_unknown_rejected () =
  let t = Round_robin.create ~servers:(ids 2) ~file_sets:(names 4) () in
  Alcotest.check_raises "unknown"
    (Failure "Round_robin.locate: unknown file set nope") (fun () ->
      ignore (Round_robin.locate t "nope"))

let test_round_robin_failure_redeals () =
  let fs = names 20 in
  let t = Round_robin.create ~servers:(ids 4) ~file_sets:fs () in
  let p = Round_robin.policy t in
  p.Policy.server_failed (Id.of_int 0);
  let counts = Array.make 4 0 in
  List.iter
    (fun n ->
      let id = Id.to_int (Round_robin.locate t n) in
      counts.(id) <- counts.(id) + 1)
    fs;
  check_int "dead server empty" 0 counts.(0);
  check_int "all sets placed" 20 (Array.fold_left ( + ) 0 counts);
  let live = [ counts.(1); counts.(2); counts.(3) ] in
  check_bool "survivors near-even" true
    (List.fold_left max 0 live - List.fold_left min max_int live <= 2)

(* --- prescient --- *)

let speeds = [ (Id.of_int 0, 1.0); (Id.of_int 1, 3.0); (Id.of_int 2, 5.0) ]

let test_makespan () =
  let demands = [ ("a", 10.0); ("b", 3.0) ] in
  let assignment = [ ("a", Id.of_int 2); ("b", Id.of_int 0) ] in
  Alcotest.(check (float 1e-9))
    "max of load/speed" 3.0
    (Prescient.makespan ~speeds ~demands assignment)

let test_lpt_reasonable () =
  let demands = List.init 30 (fun i -> (Printf.sprintf "d%d" i, 1.0 +. float_of_int (i mod 5))) in
  let packed =
    Prescient.lpt_assignment ~speeds ~demands
      ~current:(fun _ -> None)
      ~stability_bias:0.0
  in
  check_int "all placed" 30 (List.length packed);
  (* LPT on uniform machines stays within 2x of the trivial lower
     bound total/sum-speeds (loose but real). *)
  let total = List.fold_left (fun acc (_, d) -> acc +. d) 0.0 demands in
  let lower = total /. 9.0 in
  let span = Prescient.makespan ~speeds ~demands packed in
  check_bool "bounded" true (span <= 2.0 *. lower +. 1.0)

let test_lpt_close_to_exact () =
  (* Small instances: greedy within the classic bound of optimum. *)
  let demands =
    [ ("a", 7.0); ("b", 5.0); ("c", 4.0); ("d", 3.0); ("e", 2.0); ("f", 2.0) ]
  in
  let packed =
    Prescient.lpt_assignment ~speeds ~demands
      ~current:(fun _ -> None)
      ~stability_bias:0.0
  in
  let span = Prescient.makespan ~speeds ~demands packed in
  let _, best = Prescient.exact_assignment ~speeds ~demands in
  check_bool "within 4/3 + handicap slack of optimum" true
    (span <= (4.0 /. 3.0 *. best) +. 1.0)

let test_exact_assignment_optimal_on_tiny_case () =
  let speeds = [ (Id.of_int 0, 1.0); (Id.of_int 1, 2.0) ] in
  let demands = [ ("a", 2.0); ("b", 2.0); ("c", 2.0) ] in
  let assignment, span = Prescient.exact_assignment ~speeds ~demands in
  (* Optimum: two sets on the fast server (load 4 / speed 2 = 2) and
     one on the slow (2/1 = 2). *)
  Alcotest.(check (float 1e-9)) "optimal span" 2.0 span;
  check_int "all placed" 3 (List.length assignment)

let test_exact_rejects_large () =
  let demands = List.init 15 (fun i -> (string_of_int i, 1.0)) in
  Alcotest.check_raises "too large"
    (Invalid_argument "Prescient.exact_assignment: instance too large")
    (fun () -> ignore (Prescient.exact_assignment ~speeds ~demands))

let feedback demands =
  { Policy.time = 0.0; reports = []; future_demand = lazy demands }

let test_prescient_balances_by_speed () =
  let t = Prescient.create ~speeds ~stability_bias:0.0 in
  let demands = List.init 60 (fun i -> (Printf.sprintf "d%02d" i, 5.0)) in
  Prescient.rebalance t (feedback demands);
  let loads = Array.make 3 0.0 in
  List.iter
    (fun (n, d) ->
      let id = Id.to_int (Prescient.locate t n) in
      loads.(id) <- loads.(id) +. d)
    demands;
  (* Enough load that the handicap washes out: completion times should
     be roughly equal across servers. *)
  let c0 = loads.(0) /. 1.0 and c2 = loads.(2) /. 5.0 in
  check_bool "completion times comparable" true
    (Float.abs (c0 -. c2) <= 12.0);
  check_bool "fast server carries more" true (loads.(2) > loads.(0))

let test_prescient_avoids_slow_server_when_light () =
  let t = Prescient.create ~speeds ~stability_bias:0.0 in
  (* Tiny total demand: the handicap keeps everything off the slowest
     server — the paper's optimal for its synthetic workload. *)
  let demands = List.init 10 (fun i -> (Printf.sprintf "d%d" i, 0.05)) in
  Prescient.rebalance t (feedback demands);
  List.iter
    (fun (n, _) ->
      check_bool "not on slowest" false
        (Id.equal (Prescient.locate t n) (Id.of_int 0)))
    demands

let test_prescient_stationary_stable () =
  let t = Prescient.create ~speeds ~stability_bias:Prescient.default_stability_bias in
  let demands = List.init 40 (fun i -> (Printf.sprintf "d%02d" i, 1.0 +. float_of_int (i mod 7))) in
  Prescient.rebalance t (feedback demands);
  let before = List.map (fun (n, _) -> (n, Prescient.locate t n)) demands in
  (* Same demands again: nothing should move. *)
  for _ = 1 to 5 do
    Prescient.rebalance t (feedback demands)
  done;
  List.iter
    (fun (n, owner) ->
      check_bool "stable" true (Id.equal owner (Prescient.locate t n)))
    before

let test_prescient_unknown_set_parks_on_fastest () =
  let t = Prescient.create ~speeds ~stability_bias:0.0 in
  check_bool "fastest" true (Id.equal (Prescient.locate t "new") (Id.of_int 2))

let test_prescient_failure () =
  let t = Prescient.create ~speeds ~stability_bias:0.0 in
  let demands = List.init 12 (fun i -> (Printf.sprintf "d%d" i, 1.0)) in
  Prescient.rebalance t (feedback demands);
  let p = Prescient.policy t in
  p.Policy.server_failed (Id.of_int 2);
  List.iter
    (fun (n, _) ->
      check_bool "off dead server" false
        (Id.equal (Prescient.locate t n) (Id.of_int 2)))
    demands

let suite =
  [
    Alcotest.test_case "simple-random deterministic" `Quick
      test_simple_random_deterministic;
    Alcotest.test_case "simple-random uniform" `Quick
      test_simple_random_roughly_uniform;
    Alcotest.test_case "simple-random failure" `Quick
      test_simple_random_failure_redirects;
    Alcotest.test_case "round-robin equal counts" `Quick
      test_round_robin_equal_counts;
    Alcotest.test_case "round-robin unknown set" `Quick
      test_round_robin_unknown_rejected;
    Alcotest.test_case "round-robin failure redeals" `Quick
      test_round_robin_failure_redeals;
    Alcotest.test_case "makespan" `Quick test_makespan;
    Alcotest.test_case "LPT reasonable" `Quick test_lpt_reasonable;
    Alcotest.test_case "LPT close to exact" `Quick test_lpt_close_to_exact;
    Alcotest.test_case "exact optimal" `Quick test_exact_assignment_optimal_on_tiny_case;
    Alcotest.test_case "exact rejects large" `Quick test_exact_rejects_large;
    Alcotest.test_case "prescient balances by speed" `Quick
      test_prescient_balances_by_speed;
    Alcotest.test_case "prescient avoids slow when light" `Quick
      test_prescient_avoids_slow_server_when_light;
    Alcotest.test_case "prescient stationary stable" `Quick
      test_prescient_stationary_stable;
    Alcotest.test_case "prescient unknown set" `Quick
      test_prescient_unknown_set_parks_on_fastest;
    Alcotest.test_case "prescient failure" `Quick test_prescient_failure;
  ]
