(* The crash-point exploration harness: enumeration, probing,
   kill-and-restart recovery, the full sweep, and the schedule
   shrinker — including the acceptance gate that a deliberately broken
   recovery decision is caught and its schedule minimized. *)

module Explorer = Fault.Explorer

let classify () =
  Alcotest.(check bool)
    "ledger" true
    (Explorer.classify ~block:(-16) ~cas:false = Explorer.Ledger_record);
  Alcotest.(check bool)
    "deep ledger" true
    (Explorer.classify ~block:(-400) ~cas:false = Explorer.Ledger_record);
  Alcotest.(check bool)
    "lease" true
    (Explorer.classify ~block:(-1) ~cas:true = Explorer.Lease);
  Alcotest.(check bool)
    "control" true
    (Explorer.classify ~block:(-2) ~cas:false = Explorer.Control);
  Alcotest.(check bool)
    "data" true
    (Explorer.classify ~block:7 ~cas:false = Explorer.Data)

let torn_keep () =
  Alcotest.(check int) "empty" 0 (Explorer.torn_keep Explorer.Empty ~len:40);
  Alcotest.(check int) "checksum" 8
    (Explorer.torn_keep Explorer.Checksum_cut ~len:40);
  Alcotest.(check int) "header" 17
    (Explorer.torn_keep Explorer.Header_cut ~len:40);
  Alcotest.(check int) "half" 20 (Explorer.torn_keep Explorer.Half ~len:40);
  Alcotest.(check int) "all but one" 39
    (Explorer.torn_keep Explorer.All_but_one ~len:40);
  (* Clamped for records shorter than the boundary. *)
  Alcotest.(check int) "short checksum" 3
    (Explorer.torn_keep Explorer.Checksum_cut ~len:3);
  Alcotest.(check int) "short all-but-one" 0
    (Explorer.torn_keep Explorer.All_but_one ~len:0)

let record_and_arm () =
  let disk = Sharedfs.Shared_disk.create () in
  let points = Explorer.record disk in
  ignore (Sharedfs.Shared_disk.write disk ~block:(-20) "intent|x" : float);
  ignore
    (Sharedfs.Shared_disk.compare_and_swap disk ~block:(-1) ~expect:None
       "1|0|99"
      : bool);
  ignore (Sharedfs.Shared_disk.write disk ~block:5 "data" : float);
  let pts = points () in
  Alcotest.(check int) "three points" 3 (List.length pts);
  (match pts with
  | [ a; b; c ] ->
    Alcotest.(check bool) "ops 1,2,3" true
      (a.Explorer.op = 1 && b.Explorer.op = 2 && c.Explorer.op = 3);
    Alcotest.(check bool) "classes" true
      (a.Explorer.cls = Explorer.Ledger_record
      && b.Explorer.cls = Explorer.Lease
      && c.Explorer.cls = Explorer.Data)
  | _ -> Alcotest.fail "expected three points");
  (* Probe the second point with a torn write: the first proceeds,
     the second lands a prefix and kills the run. *)
  let probe =
    { Explorer.point = List.nth pts 1; mode = Explorer.Torn Explorer.Half }
  in
  let disk2 = Sharedfs.Shared_disk.create () in
  Explorer.arm disk2 probe;
  ignore (Sharedfs.Shared_disk.write disk2 ~block:(-20) "intent|x" : float);
  (match
     Sharedfs.Shared_disk.compare_and_swap disk2 ~block:(-1) ~expect:None
       "1|0|99"
   with
  | (_ : bool) -> Alcotest.fail "expected crash at op 2"
  | exception Sharedfs.Shared_disk.Crashed { op; block } ->
    Alcotest.(check int) "crash op" 2 op;
    Alcotest.(check int) "crash block" (-1) block);
  Sharedfs.Shared_disk.clear_write_hook disk2;
  (match Sharedfs.Shared_disk.read disk2 ~block:(-1) with
  | Some torn, _ -> Alcotest.(check string) "torn prefix" "1|0" torn
  | None, _ -> Alcotest.fail "torn block missing")

let probes_expand () =
  let mk op cls =
    { Explorer.op; block = (match cls with
        | Explorer.Ledger_record -> -20
        | Explorer.Lease -> -1
        | Explorer.Control -> -2
        | Explorer.Data -> 3);
      bytes = 30; cls }
  in
  let points =
    [
      mk 1 Explorer.Ledger_record; mk 2 Explorer.Lease;
      mk 3 Explorer.Control; mk 4 Explorer.Data;
    ]
  in
  (* 7 for the ledger record, 3 each for lease and control, data
     skipped by default. *)
  Alcotest.(check int) "default sweep" 13
    (List.length (Explorer.probes points));
  Alcotest.(check int) "with data" 15
    (List.length (Explorer.probes ~include_data:true points))

let sample_deterministic () =
  let mk op =
    { Explorer.op; block = -20 - op; bytes = 30;
      cls = Explorer.Ledger_record }
  in
  let probes = Explorer.probes (List.init 30 (fun i -> mk (i + 1))) in
  let a = Explorer.sample ~seed:42 ~budget:17 probes in
  let b = Explorer.sample ~seed:42 ~budget:17 probes in
  Alcotest.(check int) "budget respected" 17 (List.length a);
  Alcotest.(check bool) "same seed, same sample" true (a = b);
  Alcotest.(check bool) "subset of the sweep" true
    (List.for_all (fun p -> List.mem p probes) a);
  let ops = List.map (fun p -> p.Explorer.point.Explorer.op) a in
  Alcotest.(check bool) "sorted by op" true (List.sort compare ops = ops);
  Alcotest.(check bool) "full budget is identity" true
    (Explorer.sample ~seed:42 ~budget:(List.length probes) probes = probes)

let shrink_minimizes () =
  (* The "violation" needs 3 and 7 together: ddmin must find exactly
     that pair from an 8-element schedule. *)
  let test cand = List.mem 3 cand && List.mem 7 cand in
  let shrunk = Explorer.shrink ~test [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  Alcotest.(check (list int)) "minimal pair" [ 3; 7 ] shrunk;
  (* A violation needing nothing shrinks to nothing. *)
  Alcotest.(check (list int)) "empty reproduces" []
    (Explorer.shrink ~test:(fun _ -> true) [ 1; 2; 3 ]);
  (* Single-element needs. *)
  Alcotest.(check (list int)) "singleton" [ 5 ]
    (Explorer.shrink ~test:(List.mem 5) [ 1; 5; 9; 13 ]);
  (* A non-reproducing initial schedule is a caller bug. *)
  Alcotest.check_raises "initial must reproduce"
    (Invalid_argument "Fault.Explorer.shrink: initial schedule does not \
                       reproduce") (fun () ->
      ignore (Explorer.shrink ~test:(fun _ -> false) [ 1 ] : int list))

let small_stream seed =
  Workload.Synthetic.stream
    {
      Workload.Synthetic.default_config with
      Workload.Synthetic.file_sets = 8;
      requests = 240;
      duration = 480.0;
      seed;
    }

let anu = Experiments.Scenario.Anu Placement.Anu.default_config

let kill_restart_recovers () =
  let stream = small_stream 11 in
  match
    Experiments.Runner.run_kill_restart Experiments.Scenario.default anu
      ~stream ~kill_at:200.0 ()
  with
  | Experiments.Runner.Ran _ -> Alcotest.fail "expected a crash at t=200"
  | Experiments.Runner.Recovered r ->
    Alcotest.(check (float 1e-9)) "crashed at the kill time" 200.0
      r.Experiments.Runner.crashed_at;
    Alcotest.(check bool) "kill is not a write-point crash" true
      (r.Experiments.Runner.crash_op = None);
    Alcotest.(check bool) "ledger had committed state" true
      (r.Experiments.Runner.replay_records > 0);
    Alcotest.(check bool) "placements recovered" true
      (r.Experiments.Runner.recovered_owned > 0);
    let resumed = r.Experiments.Runner.resumed in
    Alcotest.(check (list (pair (float 1e-9) string)))
      "resumed run violates nothing" [] resumed.Experiments.Runner.violations;
    Alcotest.(check int) "resumed run drains"
      resumed.Experiments.Runner.submitted
      resumed.Experiments.Runner.completed;
    Alcotest.(check bool) "post-recovery fsck clean" true
      r.Experiments.Runner.fsck.Sharedfs.Cluster.clean

let full_sweep_clean () =
  let r = Experiments.Explore.sweep ~seed:7 () in
  Alcotest.(check bool) "found write points" true (r.Experiments.Explore.write_points > 0);
  Alcotest.(check int) "full sweep ran every probe"
    r.Experiments.Explore.probes_total r.Experiments.Explore.probes_run;
  Alcotest.(check (list (pair (float 1e-9) string)))
    "clean baseline" [] r.Experiments.Explore.baseline_violations;
  Alcotest.(check int) "zero failing probes" 0
    (List.length r.Experiments.Explore.failures);
  Alcotest.(check bool) "survived" true r.Experiments.Explore.survived

let sweep_reproducible () =
  let show r = Fmt.str "%a" Experiments.Explore.pp r in
  let a = show (Experiments.Explore.sweep ~seed:3 ~budget:25 ()) in
  let b = show (Experiments.Explore.sweep ~seed:3 ~budget:25 ()) in
  Alcotest.(check string) "byte-identical reports" a b

(* The acceptance gate: recovery that re-homes every surviving set
   onto server 0 — ignoring what the ledger committed — must be caught
   by the sweep, and the shrinker must cut its fault schedule down to
   at most 3 specs (this bug needs no help from the injector, so it
   shrinks far below that). *)
let injected_bug_caught () =
  let sabotage rep =
    let owned, orphaned = Sharedfs.Ledger.recovered_assignment rep in
    (List.map (fun (name, _) -> (name, 0)) owned, orphaned)
  in
  let r = Experiments.Explore.sweep ~seed:7 ~budget:40 ~decision:sabotage () in
  Alcotest.(check bool) "sweep catches the bug" true
    (r.Experiments.Explore.failures <> []);
  Alcotest.(check bool) "did not survive" false r.Experiments.Explore.survived;
  match r.Experiments.Explore.shrunk with
  | None -> Alcotest.fail "expected a shrunken schedule"
  | Some specs ->
    Alcotest.(check bool)
      (Fmt.str "schedule shrunk to %d specs (<= 3)" (List.length specs))
      true
      (List.length specs <= 3)

let suite =
  [
    Alcotest.test_case "classify write points" `Quick classify;
    Alcotest.test_case "torn-write boundary classes" `Quick torn_keep;
    Alcotest.test_case "record then arm a probe" `Quick record_and_arm;
    Alcotest.test_case "probe expansion per class" `Quick probes_expand;
    Alcotest.test_case "budgeted sampling is deterministic" `Quick
      sample_deterministic;
    Alcotest.test_case "ddmin shrinker is 1-minimal" `Quick shrink_minimizes;
    Alcotest.test_case "kill-and-restart recovers and resumes" `Quick
      kill_restart_recovers;
    Alcotest.test_case "full crash-point sweep is clean" `Slow full_sweep_clean;
    Alcotest.test_case "sweep report is byte-reproducible" `Slow
      sweep_reproducible;
    Alcotest.test_case "injected recovery bug caught and shrunk" `Slow
      injected_bug_caught;
  ]
