(* Unit_interval segment-set algebra, including qcheck properties. *)

open Hashlib
module Set = Unit_interval.Set

let check_float eps = Alcotest.(check (float eps))
let check_bool = Alcotest.(check bool)

let seg = Unit_interval.seg

let test_seg_validation () =
  Alcotest.check_raises "reversed"
    (Invalid_argument "Unit_interval.seg: bad segment [0.5, 0.2)") (fun () ->
      ignore (seg 0.5 0.2));
  Alcotest.check_raises "above one"
    (Invalid_argument "Unit_interval.seg: bad segment [0.5, 1.2)") (fun () ->
      ignore (seg 0.5 1.2))

let test_seg_basics () =
  let s = seg 0.25 0.75 in
  check_float 1e-12 "measure" 0.5 (Unit_interval.seg_measure s);
  check_bool "contains lo" true (Unit_interval.seg_contains s 0.25);
  check_bool "excludes hi" false (Unit_interval.seg_contains s 0.75);
  check_bool "mid" true (Unit_interval.seg_contains s 0.5)

let test_of_list_normalizes () =
  let t = Set.of_list [ seg 0.4 0.6; seg 0.0 0.2; seg 0.1 0.3 ] in
  let segs = Set.segments t in
  Alcotest.(check int) "merged to two" 2 (List.length segs);
  check_float 1e-12 "measure" 0.5 (Set.measure t)

let test_adjacent_merge () =
  let t = Set.of_list [ seg 0.0 0.25; seg 0.25 0.5 ] in
  Alcotest.(check int) "coalesced" 1 (List.length (Set.segments t));
  check_float 1e-12 "measure" 0.5 (Set.measure t)

let test_slivers_dropped () =
  let t = Set.of_list [ seg 0.5 (0.5 +. (Unit_interval.eps /. 2.0)) ] in
  check_bool "empty" true (Set.is_empty t)

let test_mem () =
  let t = Set.of_list [ seg 0.1 0.2; seg 0.5 0.6 ] in
  check_bool "in first" true (Set.mem t 0.15);
  check_bool "in gap" false (Set.mem t 0.3);
  check_bool "in second" true (Set.mem t 0.55);
  check_bool "outside" false (Set.mem t 0.9)

let test_inter () =
  let a = Set.of_list [ seg 0.0 0.5 ] in
  let b = Set.of_list [ seg 0.25 0.75 ] in
  let i = Set.inter a b in
  check_float 1e-12 "measure" 0.25 (Set.measure i);
  check_bool "equal" true (Set.equal i (Set.of_seg (seg 0.25 0.5)))

let test_diff () =
  let a = Set.of_list [ seg 0.0 1.0 ] in
  let b = Set.of_list [ seg 0.25 0.5; seg 0.75 0.8 ] in
  let d = Set.diff a b in
  check_float 1e-12 "measure" 0.7 (Set.measure d);
  check_bool "hole" false (Set.mem d 0.3);
  check_bool "kept" true (Set.mem d 0.6)

let test_complement () =
  let t = Set.of_list [ seg 0.2 0.4 ] in
  let c = Set.complement t in
  check_float 1e-12 "measure" 0.8 (Set.measure c);
  check_bool "disjoint" true (Set.disjoint t c);
  check_bool "covers" true (Set.equal (Set.union t c) Set.full)

let test_restrict () =
  let t = Set.of_list [ seg 0.0 0.3; seg 0.6 1.0 ] in
  let r = Set.restrict t (seg 0.25 0.7) in
  check_float 1e-12 "measure" 0.15 (Set.measure r)

let test_take_low () =
  let t = Set.of_list [ seg 0.0 0.2; seg 0.5 0.8 ] in
  let taken, rest = Set.take_low t 0.3 in
  check_float 1e-9 "taken measure" 0.3 (Set.measure taken);
  check_float 1e-9 "rest measure" 0.2 (Set.measure rest);
  check_bool "taken is low part" true (Set.mem taken 0.1);
  check_bool "taken includes start of second" true (Set.mem taken 0.55);
  check_bool "rest is high part" true (Set.mem rest 0.7);
  check_bool "disjoint" true (Set.disjoint taken rest)

let test_take_high () =
  let t = Set.of_list [ seg 0.0 0.2; seg 0.5 0.8 ] in
  let taken, rest = Set.take_high t 0.3 in
  check_float 1e-9 "taken measure" 0.3 (Set.measure taken);
  check_bool "taken is high part" true (Set.mem taken 0.75);
  check_bool "rest keeps low" true (Set.mem rest 0.1);
  check_bool "disjoint" true (Set.disjoint taken rest)

let test_take_more_than_available () =
  let t = Set.of_seg (seg 0.0 0.25) in
  let taken, rest = Set.take_low t 0.5 in
  check_float 1e-9 "takes everything" 0.25 (Set.measure taken);
  check_bool "rest empty" true (Set.is_empty rest)

let test_take_zero () =
  let t = Set.of_seg (seg 0.0 0.25) in
  let taken, rest = Set.take_low t 0.0 in
  check_bool "nothing taken" true (Set.is_empty taken);
  check_bool "rest unchanged" true (Set.equal rest t)

(* Random segment-set generator for properties. *)
let gen_set =
  QCheck.Gen.(
    let* n = 0 -- 6 in
    let* pairs =
      list_size (return n)
        (pair (float_bound_inclusive 1.0) (float_bound_inclusive 1.0))
    in
    return
      (Set.of_list
         (List.map
            (fun (a, b) -> seg (Float.min a b) (Float.max a b))
            pairs)))

let arb_set = QCheck.make ~print:(Format.asprintf "%a" Set.pp) gen_set

let prop_measure_additive =
  QCheck.Test.make ~count:500 ~name:"measure(a) = measure(a&b) + measure(a-b)"
    (QCheck.pair arb_set arb_set) (fun (a, b) ->
      let lhs = Set.measure a in
      let rhs = Set.measure (Set.inter a b) +. Set.measure (Set.diff a b) in
      Float.abs (lhs -. rhs) < 1e-7)

let prop_union_measure =
  QCheck.Test.make ~count:500
    ~name:"measure(a|b) = measure a + measure b - measure(a&b)"
    (QCheck.pair arb_set arb_set) (fun (a, b) ->
      let lhs = Set.measure (Set.union a b) in
      let rhs =
        Set.measure a +. Set.measure b -. Set.measure (Set.inter a b)
      in
      Float.abs (lhs -. rhs) < 1e-7)

let prop_complement_involutive =
  QCheck.Test.make ~count:500 ~name:"complement twice is identity" arb_set
    (fun a -> Set.equal (Set.complement (Set.complement a)) a)

let prop_take_low_splits =
  QCheck.Test.make ~count:500 ~name:"take_low splits measure exactly"
    (QCheck.pair arb_set (QCheck.float_bound_inclusive 1.0)) (fun (a, m) ->
      let taken, rest = Set.take_low a m in
      let want = Float.min m (Set.measure a) in
      Float.abs (Set.measure taken -. want) < 1e-7
      && Float.abs (Set.measure taken +. Set.measure rest -. Set.measure a)
         < 1e-7
      && Set.disjoint taken rest)

let prop_take_high_splits =
  QCheck.Test.make ~count:500 ~name:"take_high splits measure exactly"
    (QCheck.pair arb_set (QCheck.float_bound_inclusive 1.0)) (fun (a, m) ->
      let taken, rest = Set.take_high a m in
      let want = Float.min m (Set.measure a) in
      Float.abs (Set.measure taken -. want) < 1e-7
      && Set.disjoint taken rest)

let prop_diff_disjoint =
  QCheck.Test.make ~count:500 ~name:"a-b is disjoint from b"
    (QCheck.pair arb_set arb_set) (fun (a, b) ->
      Set.disjoint (Set.diff a b) b)

let suite =
  [
    Alcotest.test_case "seg validation" `Quick test_seg_validation;
    Alcotest.test_case "seg basics" `Quick test_seg_basics;
    Alcotest.test_case "of_list normalizes" `Quick test_of_list_normalizes;
    Alcotest.test_case "adjacent merge" `Quick test_adjacent_merge;
    Alcotest.test_case "slivers dropped" `Quick test_slivers_dropped;
    Alcotest.test_case "mem" `Quick test_mem;
    Alcotest.test_case "inter" `Quick test_inter;
    Alcotest.test_case "diff" `Quick test_diff;
    Alcotest.test_case "complement" `Quick test_complement;
    Alcotest.test_case "restrict" `Quick test_restrict;
    Alcotest.test_case "take_low" `Quick test_take_low;
    Alcotest.test_case "take_high" `Quick test_take_high;
    Alcotest.test_case "take more than available" `Quick
      test_take_more_than_available;
    Alcotest.test_case "take zero" `Quick test_take_zero;
    QCheck_alcotest.to_alcotest prop_measure_additive;
    QCheck_alcotest.to_alcotest prop_union_measure;
    QCheck_alcotest.to_alcotest prop_complement_involutive;
    QCheck_alcotest.to_alcotest prop_take_low_splits;
    QCheck_alcotest.to_alcotest prop_take_high_splits;
    QCheck_alcotest.to_alcotest prop_diff_disjoint;
  ]
