(* Mix64, Hash_family: determinism, uniformity, independence. *)

open Hashlib

let check_bool = Alcotest.(check bool)
let check_float eps = Alcotest.(check (float eps))

let test_mix_deterministic () =
  check_bool "mix" true (Mix64.mix 42L = Mix64.mix 42L);
  check_bool "fnv1a" true (Mix64.fnv1a "hello" = Mix64.fnv1a "hello");
  check_bool "different inputs differ" true
    (Mix64.fnv1a "hello" <> Mix64.fnv1a "hellp")

let test_mix_avalanche () =
  (* Flipping one input bit should flip roughly half the output bits. *)
  let popcount x =
    let rec go acc v =
      if Int64.equal v 0L then acc
      else go (acc + 1) (Int64.logand v (Int64.sub v 1L))
    in
    go 0 x
  in
  let total = ref 0 in
  let trials = 256 in
  for i = 0 to trials - 1 do
    let base = Int64.of_int (i * 12345) in
    let flipped = Int64.logxor base 1L in
    total := !total + popcount (Int64.logxor (Mix64.mix base) (Mix64.mix flipped))
  done;
  let avg = float_of_int !total /. float_of_int trials in
  check_float 4.0 "about 32 bits flip" 32.0 avg

let test_to_unit_float_range () =
  for i = 0 to 10_000 do
    let f = Mix64.to_unit_float (Mix64.mix (Int64.of_int i)) in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "out of [0,1)"
  done

let test_family_deterministic_across_instances () =
  let a = Hash_family.create ~seed:99 in
  let b = Hash_family.create ~seed:99 in
  check_bool "same points" true
    (Hash_family.point a ~round:3 "fs-1" = Hash_family.point b ~round:3 "fs-1");
  Alcotest.(check int) "seed" 99 (Hash_family.seed a)

let test_family_rounds_independent () =
  let f = Hash_family.create ~seed:1 in
  let p0 = Hash_family.point f ~round:0 "fs-1" in
  let p1 = Hash_family.point f ~round:1 "fs-1" in
  check_bool "rounds differ" true (p0 <> p1)

let test_family_seeds_differ () =
  let a = Hash_family.create ~seed:1 in
  let b = Hash_family.create ~seed:2 in
  check_bool "families differ" true
    (Hash_family.point a ~round:0 "x" <> Hash_family.point b ~round:0 "x")

let test_family_uniformity () =
  (* Chi-square-ish sanity: 10k names into 10 buckets. *)
  let f = Hash_family.create ~seed:7 in
  let buckets = Array.make 10 0 in
  for i = 0 to 9_999 do
    let p = Hash_family.point f ~round:0 (Printf.sprintf "name-%d" i) in
    let b = int_of_float (p *. 10.0) in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      if c < 800 || c > 1200 then Alcotest.failf "bucket count %d suspicious" c)
    buckets

let test_fallback_index_bounds () =
  let f = Hash_family.create ~seed:3 in
  for i = 0 to 999 do
    let idx = Hash_family.fallback_index f (string_of_int i) ~n:7 in
    if idx < 0 || idx >= 7 then Alcotest.fail "fallback out of range"
  done;
  Alcotest.check_raises "n=0"
    (Invalid_argument "Hash_family.fallback_index: n must be positive")
    (fun () -> ignore (Hash_family.fallback_index f "x" ~n:0))

let test_negative_round_rejected () =
  let f = Hash_family.create ~seed:3 in
  Alcotest.check_raises "round"
    (Invalid_argument "Hash_family.point: negative round") (fun () ->
      ignore (Hash_family.point f ~round:(-1) "x"))

let prop_point_in_unit_interval =
  QCheck.Test.make ~count:500 ~name:"points always land in [0,1)"
    QCheck.(pair small_string (int_range 0 30))
    (fun (name, round) ->
      let f = Hash_family.create ~seed:11 in
      let p = Hash_family.point f ~round name in
      p >= 0.0 && p < 1.0)

let suite =
  [
    Alcotest.test_case "mix deterministic" `Quick test_mix_deterministic;
    Alcotest.test_case "mix avalanche" `Quick test_mix_avalanche;
    Alcotest.test_case "to_unit_float range" `Quick test_to_unit_float_range;
    Alcotest.test_case "family deterministic" `Quick
      test_family_deterministic_across_instances;
    Alcotest.test_case "rounds independent" `Quick test_family_rounds_independent;
    Alcotest.test_case "seeds differ" `Quick test_family_seeds_differ;
    Alcotest.test_case "uniformity" `Slow test_family_uniformity;
    Alcotest.test_case "fallback bounds" `Quick test_fallback_index_bounds;
    Alcotest.test_case "negative round" `Quick test_negative_round_rejected;
    QCheck_alcotest.to_alcotest prop_point_in_unit_interval;
  ]
