(* Process-oriented simulation (effects over the event kernel). *)

open Desim

let check_int = Alcotest.(check int)
let check_float eps = Alcotest.(check (float eps))
let check_bool = Alcotest.(check bool)

let test_single_process_waits () =
  let sim = Sim.create () in
  let log = ref [] in
  Process.spawn sim (fun () ->
      log := ("start", Sim.now sim) :: !log;
      Process.wait 2.5;
      log := ("middle", Sim.now sim) :: !log;
      Process.wait 1.5;
      log := ("end", Sim.now sim) :: !log);
  Sim.run sim;
  Alcotest.(check (list (pair string (float 1e-9))))
    "timeline"
    [ ("start", 0.0); ("middle", 2.5); ("end", 4.0) ]
    (List.rev !log);
  check_int "finished" 0 (Process.running sim)

let test_processes_interleave () =
  let sim = Sim.create () in
  let log = ref [] in
  let worker name period count =
    Process.spawn sim (fun () ->
        for i = 1 to count do
          Process.wait period;
          log := Printf.sprintf "%s%d@%.0f" name i (Sim.now sim) :: !log
        done)
  in
  worker "a" 2.0 3;
  worker "b" 3.0 2;
  Sim.run sim;
  (* At t=6 both resume; b2's resumption was scheduled first (at t=3,
     vs a3's at t=4), so FIFO tie-breaking runs it first. *)
  Alcotest.(check (list string))
    "interleaving by time"
    [ "a1@2"; "b1@3"; "a2@4"; "b2@6"; "a3@6" ]
    (List.rev !log)

let test_process_state_survives_suspension () =
  let sim = Sim.create () in
  let result = ref 0 in
  Process.spawn sim (fun () ->
      (* Stack state across suspensions — the property that makes
         process style pleasant. *)
      let acc = ref 0 in
      for i = 1 to 5 do
        Process.wait 1.0;
        acc := !acc + i
      done;
      result := !acc);
  Sim.run sim;
  check_int "sum" 15 !result;
  check_float 1e-9 "clock" 5.0 (Sim.now sim)

let test_yield_lets_same_instant_events_run () =
  let sim = Sim.create () in
  let log = ref [] in
  Process.spawn sim (fun () ->
      log := "proc-before" :: !log;
      Process.yield ();
      log := "proc-after" :: !log);
  let (_ : Sim.handle) =
    Sim.schedule sim ~delay:0.0 (fun () -> log := "event" :: !log)
  in
  Sim.run sim;
  Alcotest.(check (list string))
    "yield ordering"
    [ "proc-before"; "event"; "proc-after" ]
    (List.rev !log)

let test_wait_until () =
  let sim = Sim.create () in
  let ready = ref false in
  let resumed_at = ref 0.0 in
  Process.spawn sim (fun () ->
      Process.wait_until ~poll_interval:0.5 (fun () -> !ready);
      resumed_at := Sim.now sim);
  let (_ : Sim.handle) =
    Sim.schedule sim ~delay:3.2 (fun () -> ready := true)
  in
  Sim.run sim;
  (* Resumes at the first poll after the flag flips. *)
  check_float 1e-9 "resumed" 3.5 !resumed_at

let test_negative_wait_rejected () =
  let sim = Sim.create () in
  let raised = ref false in
  Process.spawn sim (fun () ->
      try Process.wait (-1.0)
      with Invalid_argument _ -> raised := true);
  Sim.run sim;
  check_bool "exception delivered into the process" true !raised

let test_processes_and_stations_compose () =
  (* A process drives a station: the blocking style wraps the
     callback style naturally. *)
  let sim = Sim.create () in
  let st = Station.create sim ~name:"s" ~speed:1.0 in
  let latencies = ref [] in
  Process.spawn sim (fun () ->
      for i = 1 to 3 do
        let done_ = ref false in
        Station.submit st ~demand:1.0 ~tag:i ~on_complete:(fun ~latency ->
            latencies := latency :: !latencies;
            done_ := true);
        Process.wait_until ~poll_interval:0.1 (fun () -> !done_);
        (* Think time between requests. *)
        Process.wait 0.5
      done);
  Sim.run sim;
  check_int "three served" 3 (List.length !latencies);
  (* Closed loop: no queueing, each latency is the pure service time. *)
  List.iter (fun l -> check_float 1e-9 "service time" 1.0 l) !latencies

let test_running_counter () =
  let sim = Sim.create () in
  Process.spawn sim (fun () -> Process.wait 10.0);
  Process.spawn sim (fun () -> Process.wait 1.0);
  check_int "two spawned" 2 (Process.running sim);
  Sim.run_until sim ~time:5.0;
  check_int "one still waiting" 1 (Process.running sim);
  Sim.run sim;
  check_int "all done" 0 (Process.running sim)

let suite =
  [
    Alcotest.test_case "single process waits" `Quick test_single_process_waits;
    Alcotest.test_case "processes interleave" `Quick test_processes_interleave;
    Alcotest.test_case "stack state survives" `Quick
      test_process_state_survives_suspension;
    Alcotest.test_case "yield ordering" `Quick
      test_yield_lets_same_instant_events_run;
    Alcotest.test_case "wait_until" `Quick test_wait_until;
    Alcotest.test_case "negative wait" `Quick test_negative_wait_rejected;
    Alcotest.test_case "process drives station" `Quick
      test_processes_and_stations_compose;
    Alcotest.test_case "running counter" `Quick test_running_counter;
  ]
