(* ANU randomization: addressing, probe counts, rebalancing behavior,
   failure/recovery movement bounds. *)

open Placement
module Id = Sharedfs.Server_id

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ids n = List.init n Id.of_int

let family = Hashlib.Hash_family.create ~seed:2003

let names n = List.init n (Printf.sprintf "fs-%04d")

let report ?(requests = 100) server latency =
  {
    Sharedfs.Delegate.server;
    speed_hint = 1.0;
    report =
      {
        Sharedfs.Server.mean_latency = latency;
        max_latency = latency;
        requests;
      };
  }

let feedback reports =
  { Policy.time = 0.0; reports; future_demand = lazy [] }

let test_locate_deterministic () =
  let a = Anu.create ~family ~servers:(ids 5) () in
  let b = Anu.create ~family ~servers:(ids 5) () in
  List.iter
    (fun name ->
      check_bool "same owner" true (Id.equal (Anu.locate a name) (Anu.locate b name)))
    (names 200)

let test_average_probe_count () =
  (* Mapped measure is 1/2, so assignment should take ~2 probes. *)
  let t = Anu.create ~family ~servers:(ids 5) () in
  let total = ref 0 in
  let n = 2000 in
  List.iter
    (fun name ->
      let _, probes = Anu.locate_with_rounds t name in
      total := !total + probes)
    (names n);
  let avg = float_of_int !total /. float_of_int n in
  Alcotest.(check (float 0.2)) "two probes" 2.0 avg

let test_fallback_probability () =
  (* With only 2 rounds, the direct fallback fires with prob 1/4. *)
  let config = { Anu.default_config with hash_rounds = 2 } in
  let t = Anu.create ~config ~family ~servers:(ids 5) () in
  let fallbacks = ref 0 in
  let n = 4000 in
  List.iter
    (fun name ->
      let _, probes = Anu.locate_with_rounds t name in
      if probes = 3 then incr fallbacks)
    (names n);
  let rate = float_of_int !fallbacks /. float_of_int n in
  Alcotest.(check (float 0.04)) "quarter fall back" 0.25 rate

let test_initial_assignment_roughly_uniform () =
  let t = Anu.create ~family ~servers:(ids 5) () in
  let counts = Hashtbl.create 5 in
  List.iter
    (fun name ->
      let id = Anu.locate t name in
      Hashtbl.replace counts id
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts id)))
    (names 5000);
  Hashtbl.iter
    (fun _ c ->
      if c < 700 || c > 1300 then
        Alcotest.failf "initial placement skewed: %d for one server" c)
    counts

let test_rebalance_shrinks_overloaded () =
  let config = { Anu.default_config with heuristics = Heuristics.none } in
  let t = Anu.create ~config ~family ~servers:(ids 2) () in
  let before = Region_map.measure_of (Anu.region_map t) (Id.of_int 0) in
  Anu.rebalance t
    (feedback [ report (Id.of_int 0) 100.0; report (Id.of_int 1) 1.0 ]);
  let after = Region_map.measure_of (Anu.region_map t) (Id.of_int 0) in
  check_bool "shrunk" true (after < before);
  check_int "reconfigured" 1 (Anu.reconfigurations t);
  Alcotest.(check (float 1e-6))
    "half occupancy kept" 0.5
    (Region_map.total_measure (Anu.region_map t))

let test_rebalance_noop_without_traffic () =
  let t = Anu.create ~family ~servers:(ids 3) () in
  Anu.rebalance t (feedback []);
  Anu.rebalance t
    (feedback (List.map (fun id -> report ~requests:0 id 0.0) (ids 3)));
  check_int "no reconfigurations" 0 (Anu.reconfigurations t)

let test_rebalance_holds_inside_band () =
  (* All latencies within the default threshold band: no change. *)
  let t = Anu.create ~family ~servers:(ids 3) () in
  let measures_before = Region_map.measures (Anu.region_map t) in
  Anu.rebalance t
    (feedback
       [ report (Id.of_int 0) 10.0; report (Id.of_int 1) 12.0;
         report (Id.of_int 2) 9.0 ]);
  check_int "no reconfigurations" 0 (Anu.reconfigurations t);
  Alcotest.(check bool)
    "measures unchanged" true
    (measures_before = Region_map.measures (Anu.region_map t))

let test_top_off_never_explicitly_grows_idle () =
  let config =
    { Anu.default_config with heuristics = Heuristics.top_off_only }
  in
  let t = Anu.create ~config ~family ~servers:(ids 3) () in
  (* Zero out server 0 by overload, then report it idle: top-off must
     not grow it explicitly (it can only catch shed load via
     renormalization when others shrink). *)
  Anu.rebalance t
    (feedback
       [ report (Id.of_int 0) 500.0; report (Id.of_int 1) 1.0;
         report (Id.of_int 2) 1.0 ]);
  let m0 = Region_map.measure_of (Anu.region_map t) (Id.of_int 0) in
  Anu.rebalance t
    (feedback
       [ report ~requests:0 (Id.of_int 0) 0.0; report (Id.of_int 1) 10.0;
         report (Id.of_int 2) 10.0 ]);
  let m0' = Region_map.measure_of (Anu.region_map t) (Id.of_int 0) in
  (* Idle + balanced others: nothing shrinks, so no implicit growth
     either. *)
  Alcotest.(check (float 1e-9)) "no explicit growth" m0 m0'

let test_grow_from_zero_uses_floor () =
  let config = { Anu.default_config with heuristics = Heuristics.none } in
  let t = Anu.create ~config ~family ~servers:(ids 2) () in
  (* Crush server 0 to (near) zero over several rounds. *)
  for _ = 1 to 12 do
    Anu.rebalance t
      (feedback [ report (Id.of_int 0) 1000.0; report (Id.of_int 1) 1.0 ])
  done;
  let m0 = Region_map.measure_of (Anu.region_map t) (Id.of_int 0) in
  check_bool "near zero" true (m0 < 0.01);
  (* Now report it idle: without top-off it grows again from the
     floor. *)
  Anu.rebalance t
    (feedback [ report ~requests:0 (Id.of_int 0) 0.0; report (Id.of_int 1) 10.0 ]);
  let m0' = Region_map.measure_of (Anu.region_map t) (Id.of_int 0) in
  check_bool "grew from floor" true (m0' > m0)

let test_failure_moves_only_bounded_sets () =
  let t = Anu.create ~family ~servers:(ids 5) () in
  let all = names 2000 in
  let before = List.map (fun n -> (n, Anu.locate t n)) all in
  let failed = Id.of_int 2 in
  Anu.server_failed t failed;
  let moved_not_from_failed = ref 0 in
  let failed_sets = ref 0 in
  List.iter
    (fun (name, old_owner) ->
      let new_owner = Anu.locate t name in
      check_bool "failed server unused" false (Id.equal new_owner failed);
      if Id.equal old_owner failed then incr failed_sets
      else if not (Id.equal new_owner old_owner) then
        incr moved_not_from_failed)
    before;
  check_bool "failed server had sets" true (!failed_sets > 200);
  (* Collateral movement (free-space points that became mapped) stays
     well below wholesale re-hashing. *)
  check_bool "collateral movement bounded" true
    (float_of_int !moved_not_from_failed < 0.25 *. 2000.0)

let test_recovery_restores_server () =
  let t = Anu.create ~family ~servers:(ids 5) () in
  Anu.server_failed t (Id.of_int 1);
  Anu.server_added t (Id.of_int 1);
  let counts = Hashtbl.create 5 in
  List.iter
    (fun name ->
      let id = Anu.locate t name in
      Hashtbl.replace counts id
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts id)))
    (names 3000);
  let c1 = Option.value ~default:0 (Hashtbl.find_opt counts (Id.of_int 1)) in
  check_bool "recovered server takes load again" true (c1 > 100)

let test_policy_packaging () =
  let t = Anu.create ~family ~servers:(ids 3) () in
  let p = Anu.policy t in
  Alcotest.(check string) "name" "anu" p.Policy.name;
  check_bool "locate consistent" true
    (Id.equal (p.Policy.locate "fs-0001") (Anu.locate t "fs-0001"))

let test_config_validation () =
  Alcotest.check_raises "rounds"
    (Invalid_argument "Anu.create: hash_rounds must be >= 1") (fun () ->
      ignore
        (Anu.create
           ~config:{ Anu.default_config with hash_rounds = 0 }
           ~family ~servers:(ids 2) ()));
  Alcotest.check_raises "growth"
    (Invalid_argument "Anu.create: growth_cap must exceed 1") (fun () ->
      ignore
        (Anu.create
           ~config:{ Anu.default_config with growth_cap = 1.0 }
           ~family ~servers:(ids 2) ()));
  Alcotest.check_raises "floor"
    (Invalid_argument "Anu.create: shrink_floor must lie in (0, 1)") (fun () ->
      ignore
        (Anu.create
           ~config:{ Anu.default_config with shrink_floor = 1.0 }
           ~family ~servers:(ids 2) ()))

(* --- addressing-cache correctness ---

   Twin instances receive the identical mutation sequence; [warm] is
   queried after every step (so its cache is populated and then
   invalidated repeatedly) while [cold] is only queried at the end of
   each step (every lookup a miss or fresh fill).  Addressing is a pure
   function of the mutation history, so any divergence can only come
   from the cache serving a stale entry. *)

type cache_op =
  | Retune of int  (** seed for a skewed latency report *)
  | Fail_one of int  (** index into the currently-present servers *)
  | Recover_one of int  (** index into the currently-failed servers *)
  | Add_new  (** commission a brand new server id *)

let apply_cache_op ~present ~failed ~fresh t op =
  (* Returns the new (present, failed, fresh) bookkeeping; skips ops
     that would be invalid in the current state (e.g. failing the last
     server). *)
  match op with
  | Retune seed ->
    let reports =
      List.mapi
        (fun i id ->
          report id (1.0 +. float_of_int (((seed + i) * 37) mod 100)))
        present
    in
    Anu.rebalance t (feedback reports);
    (present, failed, fresh)
  | Fail_one k when List.length present > 1 ->
    let victim = List.nth present (k mod List.length present) in
    Anu.server_failed t victim;
    (List.filter (fun id -> not (Id.equal id victim)) present,
     victim :: failed, fresh)
  | Fail_one _ -> (present, failed, fresh)
  | Recover_one k when failed <> [] ->
    let back = List.nth failed (k mod List.length failed) in
    Anu.server_added t back;
    (back :: present, List.filter (fun id -> not (Id.equal id back)) failed,
     fresh)
  | Recover_one _ -> (present, failed, fresh)
  | Add_new ->
    let id = Id.of_int fresh in
    Anu.server_added t id;
    (id :: present, failed, fresh + 1)

let cache_op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun s -> Retune s) (0 -- 1000));
        (2, map (fun k -> Fail_one k) (0 -- 10));
        (2, map (fun k -> Recover_one k) (0 -- 10));
        (1, return Add_new);
      ])

let fst3 (a, _, _) = a
let snd3 (_, b, _) = b
let trd3 (_, _, c) = c

let prop_cached_locate_agrees_with_uncached =
  let gen =
    QCheck.Gen.(
      let* n = 2 -- 6 in
      let* ops = list_size (1 -- 12) cache_op_gen in
      return (n, ops))
  in
  QCheck.Test.make ~count:60
    ~name:"cached locate agrees with uncached across reconfigurations"
    (QCheck.make gen)
    (fun (n, ops) ->
      let warm = Anu.create ~family ~servers:(ids n) () in
      let cold = Anu.create ~family ~servers:(ids n) () in
      let sample = names 120 in
      (* Populate warm's cache so every later step must invalidate. *)
      List.iter (fun name -> ignore (Anu.locate warm name)) sample;
      let state = ref (ids n, [], n) in
      List.for_all
        (fun op ->
          let present, failed, fresh = !state in
          state := apply_cache_op ~present ~failed ~fresh warm op;
          let present', failed', fresh' =
            apply_cache_op ~present ~failed ~fresh cold op
          in
          (* Both interpreters saw the same state, so bookkeeping
             agrees by construction. *)
          assert (present' = fst3 !state && failed' = snd3 !state
                 && fresh' = trd3 !state);
          List.for_all
            (fun name ->
              let w = Anu.locate_with_rounds warm name in
              let c = Anu.locate_with_rounds cold name in
              let w' = Anu.locate_with_rounds warm name in
              (* warm's first lookup after the op repopulates a
                 just-invalidated cache, its second is a guaranteed
                 hit; both must match the twin's answer. *)
              w = c && w = w')
            sample)
        ops)

let prop_locate_stable_under_idle_rebalances =
  QCheck.Test.make ~count:50
    ~name:"balanced reports never move file sets"
    (QCheck.make QCheck.Gen.(2 -- 8))
    (fun n ->
      let t = Anu.create ~family ~servers:(ids n) () in
      let all = names 300 in
      let before = List.map (Anu.locate t) all in
      Anu.rebalance t (feedback (List.map (fun id -> report id 10.0) (ids n)));
      let after = List.map (Anu.locate t) all in
      List.for_all2 Id.equal before after)

let suite =
  [
    Alcotest.test_case "locate deterministic" `Quick test_locate_deterministic;
    Alcotest.test_case "two probes on average" `Quick test_average_probe_count;
    Alcotest.test_case "fallback probability" `Quick test_fallback_probability;
    Alcotest.test_case "initial roughly uniform" `Quick
      test_initial_assignment_roughly_uniform;
    Alcotest.test_case "shrinks overloaded" `Quick test_rebalance_shrinks_overloaded;
    Alcotest.test_case "no-op without traffic" `Quick
      test_rebalance_noop_without_traffic;
    Alcotest.test_case "holds inside band" `Quick test_rebalance_holds_inside_band;
    Alcotest.test_case "top-off never grows idle" `Quick
      test_top_off_never_explicitly_grows_idle;
    Alcotest.test_case "grow from zero floor" `Quick test_grow_from_zero_uses_floor;
    Alcotest.test_case "failure movement bounded" `Quick
      test_failure_moves_only_bounded_sets;
    Alcotest.test_case "recovery restores server" `Quick
      test_recovery_restores_server;
    Alcotest.test_case "policy packaging" `Quick test_policy_packaging;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    QCheck_alcotest.to_alcotest prop_locate_stable_under_idle_rebalances;
    QCheck_alcotest.to_alcotest prop_cached_locate_agrees_with_uncached;
  ]
