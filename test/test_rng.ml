(* Rng: determinism, distribution moments, split independence. *)

open Desim

let check_bool = Alcotest.(check bool)
let check_float eps = Alcotest.(check (float eps))

let moments f n =
  let w = Welford.create () in
  for _ = 1 to n do
    Welford.add w (f ())
  done;
  (Welford.mean w, Welford.std_dev w)

let test_determinism () =
  let a = Rng.create 17 and b = Rng.create 17 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Rng.bits64 a = Rng.bits64 b)
  done

let test_different_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check int) "no collisions" 0 !same

let test_copy_preserves_state () =
  let a = Rng.create 5 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  check_bool "copy continues identically" true (Rng.bits64 a = Rng.bits64 b)

let test_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  (* The split stream must differ from the parent's continuation. *)
  let differs = ref false in
  for _ = 1 to 16 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  check_bool "differs" true !differs

let test_float_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    if x < 0.0 || x >= 1.0 then Alcotest.fail "float out of [0,1)"
  done

let test_float_moments () =
  let rng = Rng.create 4 in
  let mean, sd = moments (fun () -> Rng.float rng) 50_000 in
  check_float 0.01 "mean 1/2" 0.5 mean;
  check_float 0.01 "sd 1/sqrt12" (1.0 /. sqrt 12.0) sd

let test_int_bounds () =
  let rng = Rng.create 6 in
  let counts = Array.make 7 0 in
  for _ = 1 to 14_000 do
    let k = Rng.int rng 7 in
    if k < 0 || k >= 7 then Alcotest.fail "int out of range";
    counts.(k) <- counts.(k) + 1
  done;
  Array.iter
    (fun c ->
      if c < 1_600 || c > 2_400 then
        Alcotest.failf "uniformity suspicious: bucket count %d" c)
    counts

let test_int_rejects_nonpositive () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "bound 0"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_exponential_moments () =
  let rng = Rng.create 7 in
  let mean, sd = moments (fun () -> Rng.exponential rng ~mean:2.0) 50_000 in
  check_float 0.06 "mean" 2.0 mean;
  check_float 0.08 "sd = mean" 2.0 sd

let test_erlang_moments () =
  let rng = Rng.create 8 in
  let shape = 4 in
  let mean, sd = moments (fun () -> Rng.erlang rng ~shape ~mean:1.0) 50_000 in
  check_float 0.02 "mean" 1.0 mean;
  (* CV of Erlang-k is 1/sqrt k. *)
  check_float 0.02 "sd" (1.0 /. sqrt (float_of_int shape)) sd

let test_normal_moments () =
  let rng = Rng.create 9 in
  let mean, sd = moments (fun () -> Rng.normal rng ~mu:3.0 ~sigma:2.0) 50_000 in
  check_float 0.05 "mean" 3.0 mean;
  check_float 0.05 "sd" 2.0 sd

let test_gamma_moments () =
  let rng = Rng.create 10 in
  let shape = 3.0 and scale = 2.0 in
  let mean, sd =
    moments (fun () -> Rng.gamma rng ~shape ~scale) 50_000
  in
  check_float 0.1 "mean" (shape *. scale) mean;
  check_float 0.15 "sd" (sqrt shape *. scale) sd

let test_gamma_small_shape () =
  let rng = Rng.create 11 in
  let mean, _ = moments (fun () -> Rng.gamma rng ~shape:0.5 ~scale:1.0) 50_000 in
  check_float 0.05 "mean" 0.5 mean

let test_poisson_small_mean () =
  let rng = Rng.create 12 in
  let mean, sd =
    moments (fun () -> float_of_int (Rng.poisson rng ~mean:3.0)) 50_000
  in
  check_float 0.06 "mean" 3.0 mean;
  check_float 0.06 "sd = sqrt mean" (sqrt 3.0) sd

let test_poisson_large_mean () =
  let rng = Rng.create 13 in
  let mean, _ =
    moments (fun () -> float_of_int (Rng.poisson rng ~mean:100.0)) 20_000
  in
  check_float 0.5 "mean" 100.0 mean

let test_poisson_zero () =
  let rng = Rng.create 14 in
  Alcotest.(check int) "zero mean" 0 (Rng.poisson rng ~mean:0.0)

let test_pareto_minimum () =
  let rng = Rng.create 15 in
  for _ = 1 to 10_000 do
    if Rng.pareto rng ~shape:2.0 ~scale:1.5 < 1.5 then
      Alcotest.fail "pareto below scale"
  done

let test_pareto_mean () =
  let rng = Rng.create 16 in
  (* Mean = scale * shape / (shape - 1) for shape > 1. *)
  let mean, _ = moments (fun () -> Rng.pareto rng ~shape:3.0 ~scale:1.0) 100_000 in
  check_float 0.05 "mean" 1.5 mean

let test_zipf_bounds_and_skew () =
  let rng = Rng.create 17 in
  let counts = Array.make 10 0 in
  for _ = 1 to 50_000 do
    let k = Rng.zipf rng ~n:10 ~s:1.0 in
    if k < 1 || k > 10 then Alcotest.fail "zipf out of range";
    counts.(k - 1) <- counts.(k - 1) + 1
  done;
  check_bool "rank 1 most frequent" true (counts.(0) > counts.(4));
  check_bool "monotone-ish" true (counts.(0) > counts.(9));
  (* Rank 1 to rank 2 ratio should be near 2 for s = 1. *)
  let ratio = float_of_int counts.(0) /. float_of_int counts.(1) in
  check_float 0.2 "harmonic ratio" 2.0 ratio

let test_shuffle_is_permutation () =
  let rng = Rng.create 18 in
  let arr = Array.init 100 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 Fun.id) sorted

let test_choose () =
  let rng = Rng.create 19 in
  let arr = [| "x"; "y"; "z" |] in
  for _ = 1 to 100 do
    if not (Array.mem (Rng.choose rng arr) arr) then
      Alcotest.fail "choose outside array"
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choose: empty array")
    (fun () -> ignore (Rng.choose rng [||]))

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seeds differ" `Quick test_different_seeds_differ;
    Alcotest.test_case "copy" `Quick test_copy_preserves_state;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "float moments" `Slow test_float_moments;
    Alcotest.test_case "int bounds and uniformity" `Slow test_int_bounds;
    Alcotest.test_case "int rejects bound<=0" `Quick test_int_rejects_nonpositive;
    Alcotest.test_case "exponential moments" `Slow test_exponential_moments;
    Alcotest.test_case "erlang moments" `Slow test_erlang_moments;
    Alcotest.test_case "normal moments" `Slow test_normal_moments;
    Alcotest.test_case "gamma moments" `Slow test_gamma_moments;
    Alcotest.test_case "gamma shape<1" `Slow test_gamma_small_shape;
    Alcotest.test_case "poisson small mean" `Slow test_poisson_small_mean;
    Alcotest.test_case "poisson large mean" `Slow test_poisson_large_mean;
    Alcotest.test_case "poisson zero mean" `Quick test_poisson_zero;
    Alcotest.test_case "pareto minimum" `Quick test_pareto_minimum;
    Alcotest.test_case "pareto mean" `Slow test_pareto_mean;
    Alcotest.test_case "zipf bounds and skew" `Slow test_zipf_bounds_and_skew;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "choose" `Quick test_choose;
  ]
