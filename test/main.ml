let () =
  Alcotest.run "shdisk"
    [
      ("event_heap", Test_event_heap.suite);
      ("par", Test_par.suite);
      ("sim", Test_sim.suite);
      ("rng", Test_rng.suite);
      ("stat", Test_stat.suite);
      ("timeseries", Test_timeseries.suite);
      ("station", Test_station.suite);
      ("process", Test_process.suite);
      ("hashlib", Test_hashlib.suite);
      ("unit_interval", Test_unit_interval.suite);
      ("region_map", Test_region_map.suite);
      ("heuristics", Test_heuristics.suite);
      ("anu", Test_anu.suite);
      ("policies", Test_policies.suite);
      ("policy_helpers", Test_policy_helpers.suite);
      ("gossip", Test_gossip.suite);
      ("sharedfs", Test_sharedfs.suite);
      ("san", Test_san.suite);
      ("cluster", Test_cluster.suite);
      ("workload", Test_workload.suite);
      ("stream", Test_stream.suite);
      ("sessions", Test_sessions.suite);
      ("obs", Test_obs.suite);
      ("telemetry", Test_telemetry.suite);
      ("forensics", Test_forensics.suite);
      ("runner", Test_runner.suite);
      ("experiments", Test_experiments.suite);
      ("validate", Test_validate.suite);
      ("balance", Test_balance.suite);
      ("membership", Test_membership.suite);
      ("ledger", Test_ledger.suite);
      ("topology", Test_topology.suite);
      ("scale_oracles", Test_scale_oracles.suite);
      ("fault", Test_fault.suite);
    ]
