(* Station: FIFO service, latency accounting, speed, failure. *)

open Desim

let check_int = Alcotest.(check int)
let check_float eps = Alcotest.(check (float eps))
let check_bool = Alcotest.(check bool)

let test_single_job_latency () =
  let sim = Sim.create () in
  let st = Station.create sim ~name:"s" ~speed:2.0 in
  let got = ref 0.0 in
  Station.submit st ~demand:4.0 ~tag:0 ~on_complete:(fun ~latency ->
      got := latency);
  Sim.run sim;
  (* demand 4 at speed 2 = 2 seconds of pure service, no queueing. *)
  check_float 1e-9 "latency" 2.0 !got;
  check_int "completed" 1 (Station.completed st);
  check_float 1e-9 "busy time" 2.0 (Station.busy_time st)

let test_fifo_queueing_latencies () =
  let sim = Sim.create () in
  let st = Station.create sim ~name:"s" ~speed:1.0 in
  let latencies = ref [] in
  (* Three unit jobs submitted at t=0: latencies 1, 2, 3. *)
  for i = 0 to 2 do
    Station.submit st ~demand:1.0 ~tag:i ~on_complete:(fun ~latency ->
        latencies := latency :: !latencies)
  done;
  check_int "queue behind server" 2 (Station.queue_length st);
  check_bool "in service" true (Station.in_service st);
  check_float 1e-9 "backlog" 3.0 (Station.backlog_demand st);
  Sim.run sim;
  Alcotest.(check (list (float 1e-9)))
    "latencies" [ 1.0; 2.0; 3.0 ] (List.rev !latencies)

let test_arrival_during_service () =
  let sim = Sim.create () in
  let st = Station.create sim ~name:"s" ~speed:1.0 in
  let done_at = ref [] in
  Station.submit st ~demand:2.0 ~tag:0 ~on_complete:(fun ~latency:_ ->
      done_at := Sim.now sim :: !done_at);
  let (_ : Sim.handle) =
    Sim.schedule_at sim ~time:1.0 (fun () ->
        Station.submit st ~demand:1.0 ~tag:1 ~on_complete:(fun ~latency ->
            check_float 1e-9 "queued job latency" 2.0 latency;
            done_at := Sim.now sim :: !done_at))
  in
  Sim.run sim;
  Alcotest.(check (list (float 1e-9)))
    "completion times" [ 2.0; 3.0 ] (List.rev !done_at)

let test_speed_change_applies_to_next_job () =
  let sim = Sim.create () in
  let st = Station.create sim ~name:"s" ~speed:1.0 in
  let finish = ref [] in
  Station.submit st ~demand:1.0 ~tag:0 ~on_complete:(fun ~latency ->
      finish := latency :: !finish);
  Station.submit st ~demand:1.0 ~tag:1 ~on_complete:(fun ~latency ->
      finish := latency :: !finish);
  (* Speed up while the first job is in service; only the queued job
     benefits. *)
  Station.set_speed st 2.0;
  Sim.run sim;
  Alcotest.(check (list (float 1e-9)))
    "latencies" [ 1.0; 1.5 ] (List.rev !finish)

let test_utilization () =
  let sim = Sim.create () in
  let st = Station.create sim ~name:"s" ~speed:1.0 in
  Station.submit st ~demand:3.0 ~tag:0 ~on_complete:(fun ~latency:_ -> ());
  Sim.run sim;
  check_float 1e-9 "utilization" 0.3 (Station.utilization st ~until:10.0);
  check_float 1e-9 "zero horizon" 0.0 (Station.utilization st ~until:0.0)

let test_fail_returns_pending_jobs () =
  let sim = Sim.create () in
  let st = Station.create sim ~name:"s" ~speed:1.0 in
  let completions = ref 0 in
  for i = 0 to 2 do
    Station.submit st ~demand:5.0 ~tag:i ~on_complete:(fun ~latency:_ ->
        incr completions)
  done;
  let (_ : Sim.handle) =
    Sim.schedule_at sim ~time:1.0 (fun () ->
        let jobs = Station.fail st in
        Alcotest.(check (list int))
          "interrupted tags (in-service first)" [ 0; 1; 2 ]
          (List.map (fun j -> j.Station.tag) jobs))
  in
  Sim.run sim;
  check_int "no completions" 0 !completions;
  check_bool "failed" true (Station.failed st)

let test_submit_to_failed_rejected () =
  let sim = Sim.create () in
  let st = Station.create sim ~name:"s" ~speed:1.0 in
  let (_ : Station.job list) = Station.fail st in
  Alcotest.check_raises "failed" (Failure "s: submit to failed station")
    (fun () ->
      Station.submit st ~demand:1.0 ~tag:0 ~on_complete:(fun ~latency:_ -> ()))

let test_recover () =
  let sim = Sim.create () in
  let st = Station.create sim ~name:"s" ~speed:1.0 in
  let (_ : Station.job list) = Station.fail st in
  Station.recover st;
  check_bool "alive" false (Station.failed st);
  let ok = ref false in
  Station.submit st ~demand:1.0 ~tag:9 ~on_complete:(fun ~latency:_ ->
      ok := true);
  Sim.run sim;
  check_bool "serves again" true !ok

let test_double_fail_empty () =
  let sim = Sim.create () in
  let st = Station.create sim ~name:"s" ~speed:1.0 in
  let first = Station.fail st in
  let second = Station.fail st in
  check_int "first empty (idle)" 0 (List.length first);
  check_int "second empty (already failed)" 0 (List.length second)

let test_validation () =
  let sim = Sim.create () in
  Alcotest.check_raises "speed"
    (Invalid_argument "Station.create: speed must be positive") (fun () ->
      ignore (Station.create sim ~name:"s" ~speed:0.0));
  let st = Station.create sim ~name:"s" ~speed:1.0 in
  Alcotest.check_raises "demand"
    (Invalid_argument "Station.submit: demand must be positive") (fun () ->
      Station.submit st ~demand:0.0 ~tag:0 ~on_complete:(fun ~latency:_ -> ()));
  Alcotest.check_raises "set_speed"
    (Invalid_argument "Station.set_speed: speed must be positive") (fun () ->
      Station.set_speed st (-1.0))

let prop_total_latency_conserves_work =
  (* With FIFO and a single server, the k-th of n simultaneous unit
     jobs has latency k/speed. *)
  QCheck.Test.make ~count:100 ~name:"batch FIFO latencies are k * service"
    QCheck.(pair (int_range 1 20) (float_range 0.5 4.0))
    (fun (n, speed) ->
      let sim = Sim.create () in
      let st = Station.create sim ~name:"s" ~speed in
      let latencies = ref [] in
      for i = 1 to n do
        Station.submit st ~demand:1.0 ~tag:i ~on_complete:(fun ~latency ->
            latencies := latency :: !latencies)
      done;
      Sim.run sim;
      let expected = List.init n (fun i -> float_of_int (i + 1) /. speed) in
      List.for_all2
        (fun a b -> Float.abs (a -. b) < 1e-9)
        (List.rev !latencies) expected)

let suite =
  [
    Alcotest.test_case "single job latency" `Quick test_single_job_latency;
    Alcotest.test_case "FIFO queueing" `Quick test_fifo_queueing_latencies;
    Alcotest.test_case "arrival during service" `Quick
      test_arrival_during_service;
    Alcotest.test_case "speed change" `Quick test_speed_change_applies_to_next_job;
    Alcotest.test_case "utilization" `Quick test_utilization;
    Alcotest.test_case "fail returns jobs" `Quick test_fail_returns_pending_jobs;
    Alcotest.test_case "submit to failed rejected" `Quick
      test_submit_to_failed_rejected;
    Alcotest.test_case "recover" `Quick test_recover;
    Alcotest.test_case "double fail" `Quick test_double_fail_empty;
    Alcotest.test_case "validation" `Quick test_validation;
    QCheck_alcotest.to_alcotest prop_total_latency_conserves_work;
  ]
