(* Fault injection: seeded plans, the timeout/retry report protocol,
   crash-tolerant moves, the invariant oracle, and the chaos
   harness. *)

open Sharedfs
module Id = Server_id

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float eps = Alcotest.(check (float eps))

let req ?(op = Request.Open_file) file_set =
  { Request.op; file_set; path_hash = 1; client = 0 }

let raises f =
  match f () with
  | exception Invalid_argument _ -> true
  | _ -> false

(* --- Desim.Timeout --- *)

let test_timeout_schedule () =
  let p =
    { Desim.Timeout.timeout = 1.0; retries = 2; backoff = 2.0; jitter = 0.0 }
  in
  check_int "attempts" 3 (Desim.Timeout.attempts p);
  check_float 1e-9 "attempt 0 at 0" 0.0 (Desim.Timeout.attempt_start p 0);
  check_float 1e-9 "attempt 1 after first window" 1.0
    (Desim.Timeout.attempt_start p 1);
  check_float 1e-9 "attempt 2 after backoff" 3.0
    (Desim.Timeout.attempt_start p 2);
  check_float 1e-9 "deadline sums all windows" 7.0 (Desim.Timeout.deadline p);
  check_bool "zero timeout rejected" true
    (raises (fun () ->
         Desim.Timeout.validate { p with Desim.Timeout.timeout = 0.0 }));
  check_bool "negative retries rejected" true
    (raises (fun () ->
         Desim.Timeout.validate { p with Desim.Timeout.retries = -1 }));
  check_bool "sub-unit backoff rejected" true
    (raises (fun () ->
         Desim.Timeout.validate { p with Desim.Timeout.backoff = 0.5 }))

let test_timeout_jitter () =
  let p =
    { Desim.Timeout.timeout = 2.0; retries = 1; backoff = 2.0; jitter = 0.5 }
  in
  Desim.Timeout.validate p;
  check_bool "jitter at 1 rejected" true
    (raises (fun () ->
         Desim.Timeout.validate { p with Desim.Timeout.jitter = 1.0 }));
  check_bool "negative jitter rejected" true
    (raises (fun () ->
         Desim.Timeout.validate { p with Desim.Timeout.jitter = -0.1 }));
  (* jitter = 0 returns the nominal window without touching the
     generator: an existing stream is never perturbed. *)
  let rng = Desim.Rng.create 9 in
  let probe = Desim.Rng.copy rng in
  let w =
    Desim.Timeout.jittered_window ~rng { p with Desim.Timeout.jitter = 0.0 } 1
  in
  check_float 1e-9 "zero jitter is the nominal window" 4.0 w;
  check_float 1e-18 "generator untouched" (Desim.Rng.float probe)
    (Desim.Rng.float rng);
  (* Jittered windows stay inside [1-j, 1+j] x nominal and replay
     exactly from an equal seed. *)
  let draws seed =
    let rng = Desim.Rng.create seed in
    List.init 50 (fun i -> Desim.Timeout.jittered_window ~rng p (i mod 2))
  in
  check_bool "same seed, same windows" true (draws 11 = draws 11);
  check_bool "different seed perturbs" true (draws 11 <> draws 12);
  List.iteri
    (fun i w ->
      let nominal = Desim.Timeout.window p (i mod 2) in
      if w < 0.5 *. nominal -. 1e-9 || w > 1.5 *. nominal +. 1e-9 then
        Alcotest.failf "window %d out of range: %g vs nominal %g" i w nominal)
    (draws 11)

(* --- Fault.Plan --- *)

let test_plan_validation () =
  check_bool "negative time rejected" true
    (raises (fun () ->
         Fault.Plan.make ~seed:1
           [ Fault.Plan.Crash_at { at = -1.0; server = 0 } ]));
  check_bool "probability above 1 rejected" true
    (raises (fun () ->
         Fault.Plan.make ~seed:1
           [ Fault.Plan.Report_loss { probability = 1.5 } ]));
  check_bool "stall factor below 1 rejected" true
    (raises (fun () ->
         Fault.Plan.make ~seed:1
           [
             Fault.Plan.Disk_stall_at
               { at = 0.0; factor = 0.5; duration = 1.0 };
           ]));
  check_bool "zero-based round rejected" true
    (raises (fun () ->
         Fault.Plan.make ~seed:1
           [ Fault.Plan.Delegate_crash_in_round { round = 0 } ]))

let test_plan_timeline_deterministic () =
  let specs =
    [
      Fault.Plan.Crash_hazard { server = 0; mttf = 100.0; mttr = 20.0 };
      Fault.Plan.Crash_at { at = 50.0; server = 1 };
      Fault.Plan.Recover_at { at = 90.0; server = 1 };
    ]
  in
  let tl seed =
    Fault.Plan.timeline (Fault.Plan.make ~seed specs) ~duration:500.0
  in
  check_bool "same seed, same timeline" true (tl 7 = tl 7);
  check_bool "different seed perturbs hazards" true (tl 7 <> tl 8);
  let times = List.map fst (tl 7) in
  check_bool "sorted by time" true (List.sort compare times = times);
  check_bool "everything inside the horizon" true
    (List.for_all (fun t -> t >= 0.0 && t < 500.0) times);
  (* A hazard alternates crash / recover for its server. *)
  let s0 =
    List.filter_map
      (fun (_, f) ->
        match f with
        | Fault.Plan.Crash 0 -> Some `C
        | Fault.Plan.Recover 0 -> Some `R
        | _ -> None)
      (tl 7)
  in
  let rec alternates = function
    | `C :: `R :: rest -> alternates (`R :: rest)
    | `R :: `C :: rest -> alternates (`C :: rest)
    | [ _ ] | [] -> true
    | `C :: `C :: _ | `R :: `R :: _ -> false
  in
  check_bool "hazard alternates crash/recover" true
    (match s0 with
    | [] -> true
    | `R :: _ -> false (* cannot recover before first crash *)
    | `C :: _ -> alternates s0)

let test_plan_accessors () =
  let plan =
    Fault.Plan.make ~seed:3
      [
        Fault.Plan.Report_loss { probability = 0.5 };
        Fault.Plan.Report_loss { probability = 0.5 };
        Fault.Plan.Report_delay { base = 0.1; jitter = 0.2 };
        Fault.Plan.Move_crash { nth_move = 4; role = `Dst };
        Fault.Plan.Move_crash { nth_move = 1; role = `Src };
        Fault.Plan.Delegate_crash_in_round { round = 6 };
        Fault.Plan.Delegate_crash_in_round { round = 2 };
      ]
  in
  (* Two independent 50% loss layers compose to 75%. *)
  check_float 1e-9 "loss layers compose" 0.75
    (Fault.Plan.report_loss_probability plan);
  check_bool "move crashes sorted" true
    (Fault.Plan.move_crashes plan = [ (1, `Src); (4, `Dst) ]);
  check_bool "crash rounds sorted" true
    (Fault.Plan.delegate_crash_rounds plan = [ 2; 6 ])

let test_plan_timeline_edge_cases () =
  (* Same-instant crash and recover of one server: ties keep spec
     order, so the pair lands crash-then-recover, deterministically. *)
  let plan =
    Fault.Plan.make ~seed:1
      [
        Fault.Plan.Crash_at { at = 10.0; server = 0 };
        Fault.Plan.Recover_at { at = 10.0; server = 0 };
      ]
  in
  check_bool "tied events keep spec order" true
    (Fault.Plan.timeline plan ~duration:100.0
    = [ (10.0, Fault.Plan.Crash 0); (10.0, Fault.Plan.Recover 0) ]);
  (* Degenerate hazards are rejected up front, not at timeline time. *)
  check_bool "zero mttr rejected" true
    (raises (fun () ->
         Fault.Plan.make ~seed:1
           [ Fault.Plan.Crash_hazard { server = 0; mttf = 10.0; mttr = 0.0 } ]));
  check_bool "zero mttf rejected" true
    (raises (fun () ->
         Fault.Plan.make ~seed:1
           [ Fault.Plan.Crash_hazard { server = 0; mttf = 0.0; mttr = 5.0 } ]))

let test_plan_partition_timeline () =
  check_bool "non-positive heal_after rejected" true
    (raises (fun () ->
         Fault.Plan.make ~seed:1
           [
             Fault.Plan.Partition_at
               { at = 1.0; server = 0; link = `Cluster; heal_after = 0.0 };
           ]));
  check_bool "negative torn index rejected" true
    (raises (fun () ->
         Fault.Plan.make ~seed:1 [ Fault.Plan.Torn_write { nth_append = -1 } ]));
  let plan =
    Fault.Plan.make ~seed:1
      [
        Fault.Plan.Partition_at
          { at = 10.0; server = 1; link = `Cluster; heal_after = 20.0 };
        Fault.Plan.Partition_at
          { at = 90.0; server = 2; link = `Disk; heal_after = 50.0 };
        Fault.Plan.Torn_write { nth_append = 5 };
        Fault.Plan.Torn_write { nth_append = 3 };
        Fault.Plan.Torn_write { nth_append = 5 };
      ]
  in
  let tl = Fault.Plan.timeline plan ~duration:100.0 in
  check_bool "cut and heal paired" true
    (List.mem (10.0, Fault.Plan.Partition { server = 1; link = `Cluster }) tl
    && List.mem (30.0, Fault.Plan.Heal { server = 1; link = `Cluster }) tl);
  check_bool "cut inside horizon scheduled" true
    (List.mem (90.0, Fault.Plan.Partition { server = 2; link = `Disk }) tl);
  check_bool "heal past the horizon clipped" true
    (not
       (List.exists
          (fun (_, f) ->
            match f with
            | Fault.Plan.Heal { server = 2; _ } -> true
            | _ -> false)
          tl));
  check_bool "torn appends sorted and deduplicated" true
    (Fault.Plan.torn_appends plan = [ 3; 5 ])

let test_plan_spec_kinds_complete () =
  let names = List.map fst Fault.Plan.spec_kinds in
  check_int "fifteen spec kinds documented" 15 (List.length names);
  List.iter
    (fun n ->
      check_bool (n ^ " documented") true (List.mem n names))
    [
      "crash-at"; "partition-at"; "torn-write"; "move-crash"; "report-loss";
      "domain-crash-at"; "domain-recover-at"; "domain-partition-at";
      "domain-hazard";
    ];
  List.iter
    (fun (_, desc) -> check_bool "non-empty description" true (desc <> ""))
    Fault.Plan.spec_kinds

(* --- Delegate.collect_async --- *)

let make_cluster ?(names = [ "a"; "b"; "c"; "d" ])
    ?(speeds = [ 1.0; 1.0; 1.0 ]) () =
  let sim = Desim.Sim.create () in
  let disk = Shared_disk.create () in
  let catalog = File_set.Catalog.create names in
  let servers = List.mapi (fun i s -> (Id.of_int i, s)) speeds in
  let cluster =
    Cluster.create sim ~disk ~catalog ~series_interval:10.0 ~servers ()
  in
  (sim, cluster)

let default_timeout = Desim.Timeout.default

let collect_with ~fate () =
  let sim, cluster = make_cluster () in
  Cluster.assign_initial cluster
    [
      ("a", Id.of_int 0); ("b", Id.of_int 1); ("c", Id.of_int 2);
      ("d", Id.of_int 0);
    ];
  let outcome = ref None in
  Delegate.collect_async cluster ~timeout:default_timeout ~fate
    ~k:(fun o -> outcome := Some o);
  Desim.Sim.run sim;
  (Desim.Sim.now sim, !outcome)

let test_collect_async_complete () =
  let now, outcome =
    collect_with ~fate:(fun ~server:_ ~attempt:_ -> `Deliver 0.1) ()
  in
  (match outcome with
  | Some (Delegate.Round_complete reports) ->
    check_int "all three reported" 3 (List.length reports)
  | _ -> Alcotest.fail "expected Round_complete");
  check_float 1e-9 "round closes at last arrival" 0.1 now

let test_collect_async_degraded () =
  let now, outcome =
    collect_with
      ~fate:(fun ~server ~attempt:_ ->
        if Id.to_int server = 1 then `Lost else `Deliver 0.0)
      ()
  in
  (match outcome with
  | Some (Delegate.Round_degraded { reports; missing }) ->
    check_int "two survivors" 2 (List.length reports);
    check_bool "server 1 missing" true (missing = [ Id.of_int 1 ])
  | _ -> Alcotest.fail "expected Round_degraded");
  check_float 1e-9 "silence waits out the deadline"
    (Desim.Timeout.deadline default_timeout)
    now

let test_collect_async_skipped () =
  let _, outcome =
    collect_with
      ~fate:(fun ~server ~attempt:_ ->
        if Id.to_int server = 0 then `Deliver 0.0 else `Lost)
      ()
  in
  match outcome with
  | Some (Delegate.Round_skipped { missing }) ->
    (* 1 of 3 reports is below the strict-majority quorum of 2. *)
    check_int "two missing" 2 (List.length missing)
  | _ -> Alcotest.fail "expected Round_skipped"

let test_collect_async_slow_reply_retries () =
  (* A reply slower than the attempt window counts as silence; the
     retransmission succeeds inside attempt 1, so the report arrives
     at attempt_start(1) + delay. *)
  let now, outcome =
    collect_with
      ~fate:(fun ~server ~attempt ->
        if Id.to_int server = 2 && attempt = 0 then `Deliver 5.0
        else `Deliver 0.5)
      ()
  in
  (match outcome with
  | Some (Delegate.Round_complete reports) ->
    check_int "all three reported" 3 (List.length reports)
  | _ -> Alcotest.fail "expected Round_complete");
  check_float 1e-9 "retry arrival time"
    (Desim.Timeout.attempt_start default_timeout 1 +. 0.5)
    now

let test_quorum () =
  check_int "quorum of 1" 1 (Delegate.quorum ~alive:1);
  check_int "quorum of 2" 2 (Delegate.quorum ~alive:2);
  check_int "quorum of 5" 3 (Delegate.quorum ~alive:5)

(* --- Cluster: no-op contracts and mid-move crashes --- *)

let test_fail_recover_noop_contracts () =
  let _, cluster = make_cluster () in
  Cluster.assign_initial cluster
    [
      ("a", Id.of_int 0); ("b", Id.of_int 0); ("c", Id.of_int 1);
      ("d", Id.of_int 2);
    ];
  Cluster.recover_server cluster (Id.of_int 0);
  check_bool "recovering an alive server is a no-op" true
    (List.mem (Id.of_int 0) (Cluster.alive_ids cluster));
  let first = Cluster.fail_server cluster (Id.of_int 0) in
  check_bool "first failure orphans the sets" true
    (List.sort compare first = [ "a"; "b" ]);
  check_int "double failure is an explicit no-op" 0
    (List.length (Cluster.fail_server cluster (Id.of_int 0)));
  check_bool "unknown id still rejected" true
    (raises (fun () -> Cluster.fail_server cluster (Id.of_int 99)))

(* One deterministic mid-move crash per role, proving the set is never
   lost or doubly owned and no buffered request is dropped. *)
let mid_move_crash_case ~role () =
  let sim, cluster = make_cluster () in
  Cluster.assign_initial cluster
    [
      ("a", Id.of_int 0); ("b", Id.of_int 1); ("c", Id.of_int 1);
      ("d", Id.of_int 2);
    ];
  let completed = ref 0 in
  let (_ : Desim.Sim.handle) =
    Desim.Sim.schedule_at sim ~time:1.0 (fun () ->
        Cluster.move cluster ~file_set:"a" ~dst:(Id.of_int 1);
        (* Arrives mid-move: buffered behind the transfer. *)
        Cluster.submit cluster ~base_demand:0.1 (req "a")
          ~on_complete:(fun ~latency:_ -> incr completed))
  in
  (* flush_fixed is 2.0 s, so t=2.0 is mid-flush for the source and
     mid-transfer for the destination. *)
  let victim = match role with `Src -> 0 | `Dst -> 1 in
  let (_ : Desim.Sim.handle) =
    Desim.Sim.schedule_at sim ~time:2.0 (fun () ->
        let (_ : string list) =
          Cluster.fail_server cluster (Id.of_int victim)
        in
        ())
  in
  (* The placement layer adopts the orphan on its next sweep. *)
  let (_ : Desim.Sim.handle) =
    Desim.Sim.schedule_at sim ~time:30.0 (fun () ->
        check_bool "set is orphaned, not lost" true
          (List.exists
             (fun (n, st) ->
               n = "a"
               && match st with Cluster.State_orphaned _ -> true | _ -> false)
             (Cluster.ownership_states cluster));
        Cluster.move cluster ~file_set:"a" ~dst:(Id.of_int 2))
  in
  Desim.Sim.run sim;
  check_int "move died with its endpoint" 1 (Cluster.moves_failed cluster);
  check_int "buffered request replayed, not dropped" 1 !completed;
  check_bool "exactly one final owner" true
    (Cluster.owner cluster "a" = Some (Id.of_int 2));
  let c = Cluster.conservation cluster in
  check_int "conservation: everything completed" c.Cluster.submitted
    c.Cluster.completed;
  check_int "no request parked anywhere" 0
    (c.Cluster.inflight + c.Cluster.buffered + c.Cluster.lock_waiting)

let test_mid_move_crash_src () = mid_move_crash_case ~role:`Src ()
let test_mid_move_crash_dst () = mid_move_crash_case ~role:`Dst ()

let test_src_crash_after_flush_harmless () =
  (* Once the flush finished, the image is on the shared disk: a
     source crash afterwards must NOT kill the move. *)
  let sim, cluster = make_cluster () in
  Cluster.assign_initial cluster
    [
      ("a", Id.of_int 0); ("b", Id.of_int 1); ("c", Id.of_int 1);
      ("d", Id.of_int 2);
    ];
  let (_ : Desim.Sim.handle) =
    Desim.Sim.schedule_at sim ~time:1.0 (fun () ->
        Cluster.move cluster ~file_set:"a" ~dst:(Id.of_int 1))
  in
  (* flush_fixed 2.0 + transfer ends well before t=4.0; init_fixed 3.0
     keeps the move in flight until past t=6. *)
  let (_ : Desim.Sim.handle) =
    Desim.Sim.schedule_at sim ~time:4.5 (fun () ->
        let (_ : string list) = Cluster.fail_server cluster (Id.of_int 0) in
        ())
  in
  Desim.Sim.run sim;
  check_int "move survived the source crash" 0 (Cluster.moves_failed cluster);
  check_bool "destination owns the set" true
    (Cluster.owner cluster "a" = Some (Id.of_int 1))

(* --- Shared_disk stall --- *)

let test_disk_stall_scales_transfers () =
  let disk = Shared_disk.create () in
  let base = Shared_disk.transfer_time disk ~bytes:1_000_000 in
  Shared_disk.set_stall disk ~factor:4.0;
  check_float 1e-9 "stalled transfer is 4x" (4.0 *. base)
    (Shared_disk.transfer_time disk ~bytes:1_000_000);
  Shared_disk.clear_stall disk;
  check_float 1e-9 "clear restores" base
    (Shared_disk.transfer_time disk ~bytes:1_000_000);
  check_bool "factor below 1 rejected" true
    (raises (fun () -> Shared_disk.set_stall disk ~factor:0.9))

(* --- Fault.Invariants --- *)

let fake_policy ?(regions = fun () -> []) ?(check = fun () -> []) () =
  {
    Placement.Policy.name = "fake";
    locate = (fun _ -> Id.of_int 0);
    rebalance = (fun _ -> ());
    server_failed = (fun _ -> ());
    server_added = (fun _ -> ());
    delegate_crashed = (fun () -> ());
    regions;
    changed_servers = Placement.Policy.no_changes;
    check;
  }

let test_invariants_half_occupancy () =
  let _, cluster = make_cluster () in
  Cluster.assign_initial cluster
    [
      ("a", Id.of_int 0); ("b", Id.of_int 0); ("c", Id.of_int 0);
      ("d", Id.of_int 0);
    ];
  let ok =
    fake_policy
      ~regions:(fun () -> [ (Id.of_int 0, 0.2); (Id.of_int 1, 0.3) ])
      ()
  in
  check_int "healthy regions pass" 0
    (List.length (Fault.Invariants.check ~cluster ~policy:ok ()));
  let broken =
    fake_policy ~regions:(fun () -> [ (Id.of_int 0, 0.3) ]) ()
  in
  check_int "mapped measure away from 1/2 caught" 1
    (List.length (Fault.Invariants.check ~cluster ~policy:broken ()));
  let negative =
    fake_policy
      ~regions:(fun () -> [ (Id.of_int 0, 0.6); (Id.of_int 1, -0.1) ])
      ()
  in
  check_bool "negative measure caught" true
    (List.length (Fault.Invariants.check ~cluster ~policy:negative ()) >= 1)

let test_invariants_policy_self_check_and_extra () =
  let _, cluster = make_cluster () in
  Cluster.assign_initial cluster
    [
      ("a", Id.of_int 0); ("b", Id.of_int 0); ("c", Id.of_int 0);
      ("d", Id.of_int 0);
    ];
  let policy = fake_policy ~check:(fun () -> [ "self-check broke" ]) () in
  let vs =
    Fault.Invariants.check ~cluster ~policy
      ~extra:(fun () -> [ "deliberately broken" ])
      ()
  in
  check_bool "policy self-check surfaces" true
    (List.exists
       (fun v -> v.Fault.Invariants.what = "self-check broke")
       vs);
  check_bool "extra hook surfaces" true
    (List.exists
       (fun v -> v.Fault.Invariants.what = "deliberately broken")
       vs)

let test_invariants_real_anu_clean () =
  let _, cluster = make_cluster () in
  let family = Hashlib.Hash_family.create ~seed:5 in
  let anu =
    Placement.Anu.policy
      (Placement.Anu.create ~family
         ~servers:[ Id.of_int 0; Id.of_int 1; Id.of_int 2 ]
         ())
  in
  Cluster.assign_initial cluster
    (Placement.Policy.assignment_of anu [ "a"; "b"; "c"; "d" ]);
  check_int "fresh ANU cluster is healthy" 0
    (List.length (Fault.Invariants.check ~cluster ~policy:anu ()))

(* --- Runner integration: deterministic regressions --- *)

let small_trace ~seed =
  Workload.Synthetic.generate
    {
      Workload.Synthetic.default_config with
      requests = 1500;
      file_sets = 40;
      duration = 1200.0;
      seed;
    }

let anu_spec = Experiments.Scenario.Anu Placement.Anu.default_config

let run_chaos ?invariant_extra ~plan ~spec () =
  let obs = Obs.Ctx.create ~metrics:(Obs.Metrics.create ()) () in
  Experiments.Runner.run Experiments.Scenario.default spec
    ~trace:(small_trace ~seed:11) ~obs ~faults:plan ?invariant_extra ()

let counter result name =
  match result.Experiments.Runner.metrics with
  | None -> 0
  | Some snap ->
    Option.value ~default:0 (List.assoc_opt name snap.Obs.Metrics.counters)

let test_runner_delegate_crash_mid_round () =
  let plan =
    Fault.Plan.make ~seed:1
      [ Fault.Plan.Delegate_crash_in_round { round = 2 } ]
  in
  let r = run_chaos ~plan ~spec:anu_spec () in
  check_int "exactly one re-election" 1
    (counter r "delegate.reelections");
  check_int "no invariant violated" 0
    (List.length r.Experiments.Runner.violations);
  check_int "no request lost" r.Experiments.Runner.submitted
    r.Experiments.Runner.completed

let runner_move_crash_case ~role () =
  let plan =
    Fault.Plan.make ~seed:2 [ Fault.Plan.Move_crash { nth_move = 0; role } ]
  in
  let r = run_chaos ~plan ~spec:anu_spec () in
  check_bool "a move died mid-flight" true (counter r "moves.failed" >= 1);
  check_int "no invariant violated" 0
    (List.length r.Experiments.Runner.violations);
  check_int "no request lost" r.Experiments.Runner.submitted
    r.Experiments.Runner.completed

let test_runner_move_crash_src () = runner_move_crash_case ~role:`Src ()
let test_runner_move_crash_dst () = runner_move_crash_case ~role:`Dst ()

let test_runner_report_loss_degrades_not_garbage () =
  (* Heavy loss: some rounds degrade or skip, but the run still
     completes every request with invariants intact. *)
  let plan =
    Fault.Plan.make ~seed:3
      [ Fault.Plan.Report_loss { probability = 0.45 } ]
  in
  let r = run_chaos ~plan ~spec:anu_spec () in
  check_bool "losses actually happened" true (counter r "reports.lost" > 0);
  check_int "no invariant violated" 0
    (List.length r.Experiments.Runner.violations);
  check_int "no request lost" r.Experiments.Runner.submitted
    r.Experiments.Runner.completed

let test_runner_broken_invariant_caught () =
  let plan = Fault.Plan.make ~seed:4 [] in
  let r =
    run_chaos ~plan ~spec:anu_spec
      ~invariant_extra:(fun () -> [ "deliberately broken" ])
      ()
  in
  check_bool "the harness reports the breach" true
    (List.length r.Experiments.Runner.violations > 0);
  check_bool "with the planted message" true
    (List.for_all
       (fun (_, what) -> what = "deliberately broken")
       r.Experiments.Runner.violations)

let test_runner_decommission_drains_cleanly () =
  let trace = small_trace ~seed:13 in
  let obs = Obs.Ctx.create ~metrics:(Obs.Metrics.create ()) () in
  let r =
    Experiments.Runner.run Experiments.Scenario.default anu_spec ~trace ~obs
      ~check_invariants:true
      ~events:
        [
          {
            Experiments.Runner.at = 300.0;
            action = Experiments.Runner.Decommission 2;
          };
        ]
      ()
  in
  check_int "no invariant violated" 0
    (List.length r.Experiments.Runner.violations);
  check_int "no request lost" r.Experiments.Runner.submitted
    r.Experiments.Runner.completed

let test_faultfree_path_unchanged () =
  (* The async machinery must not perturb a run that injects no
     faults: byte-identical results with and without the plumbing
     compiled in means same submitted/completed/moves/rounds. *)
  let trace = small_trace ~seed:17 in
  let plain =
    Experiments.Runner.run Experiments.Scenario.default anu_spec ~trace ()
  in
  let checked =
    Experiments.Runner.run Experiments.Scenario.default anu_spec ~trace
      ~check_invariants:true ()
  in
  check_int "same completions" plain.Experiments.Runner.completed
    checked.Experiments.Runner.completed;
  check_int "same moves"
    (List.length plain.Experiments.Runner.moves)
    (List.length checked.Experiments.Runner.moves);
  check_float 1e-9 "same mean latency" plain.Experiments.Runner.overall_mean
    checked.Experiments.Runner.overall_mean;
  check_int "and the checked run is healthy" 0
    (List.length checked.Experiments.Runner.violations)

(* --- Chaos harness --- *)

let test_chaos_survives_and_reproduces () =
  let s1 = Experiments.Chaos.run ~quick:true ~seed:42 ~spec:anu_spec () in
  check_bool "ANU survives the default plan" true
    s1.Experiments.Chaos.survived;
  check_int "zero violations" 0
    (List.length s1.Experiments.Chaos.violations);
  check_bool "faults were actually injected" true
    (s1.Experiments.Chaos.faults <> []);
  let s2 = Experiments.Chaos.run ~quick:true ~seed:42 ~spec:anu_spec () in
  check_bool "seeded chaos run is reproducible" true (s1 = s2);
  let rendered s = Format.asprintf "%a" Experiments.Chaos.pp s in
  Alcotest.(check string)
    "byte-identical summary" (rendered s1) (rendered s2)

(* --- Partitions, fencing and the ledger --- *)

let test_runner_partition_fences_and_heals () =
  (* The initially elected delegate (server 0) loses the cluster
     network while moves are in flight; a long partition guarantees
     zombie probes land and the old lease expires un-renewed before
     the heal. *)
  let plan =
    Fault.Plan.make ~seed:5
      [
        Fault.Plan.Partition_at
          { at = 130.0; server = 0; link = `Cluster; heal_after = 400.0 };
      ]
  in
  let r = run_chaos ~plan ~spec:anu_spec () in
  check_int "no invariant violated" 0
    (List.length r.Experiments.Runner.violations);
  check_int "no request lost" r.Experiments.Runner.submitted
    r.Experiments.Runner.completed;
  check_int "partition forced one re-election" 1
    (counter r "delegate.reelections");
  check_bool "epoch bumped at least twice (t=0 election + re-election)" true
    (counter r "fence.epoch_bump" >= 2);
  check_bool "zombie writes attempted and rejected" true
    (counter r "fence.write_rejected" > 0);
  check_bool "ledger audited along the way" true
    (counter r "ledger.replays" > 0)

let test_runner_disk_partition_survives () =
  let plan =
    Fault.Plan.make ~seed:6
      [
        Fault.Plan.Partition_at
          { at = 250.0; server = 2; link = `Disk; heal_after = 200.0 };
      ]
  in
  let r = run_chaos ~plan ~spec:anu_spec () in
  check_int "no invariant violated" 0
    (List.length r.Experiments.Runner.violations);
  check_int "no request lost" r.Experiments.Runner.submitted
    r.Experiments.Runner.completed;
  check_bool "fenced at the disk: zombie writes rejected" true
    (counter r "fence.write_rejected" > 0)

let test_runner_torn_write_repaired () =
  (* The trace has 40 file sets, so the initial assignment journals 40
     commits; index 45 tears a record written mid-run. *)
  let plan =
    Fault.Plan.make ~seed:7 [ Fault.Plan.Torn_write { nth_append = 45 } ]
  in
  let r = run_chaos ~plan ~spec:anu_spec () in
  check_int "exactly one torn append" 1 (counter r "ledger.torn_writes");
  check_bool "the invariant sweep repaired it" true
    (counter r "ledger.repaired" >= 1);
  check_int "no invariant violated" 0
    (List.length r.Experiments.Runner.violations);
  check_int "no request lost" r.Experiments.Runner.submitted
    r.Experiments.Runner.completed

let test_chaos_partition_mix_acceptance () =
  (* The headline scenario: cluster partition of the delegate during
     in-flight moves, a disk partition, a torn ledger append and
     report loss — zero violations, every zombie write rejected, fsck
     clean, byte-reproducible. *)
  let s1 =
    Experiments.Chaos.run ~quick:true ~plan_kind:`Partition ~seed:42
      ~spec:anu_spec ()
  in
  check_bool "ANU survives the partition mix" true
    s1.Experiments.Chaos.survived;
  check_int "zero violations" 0 (List.length s1.Experiments.Chaos.violations);
  check_bool "partitions actually happened" true
    (List.assoc_opt "partition_cut" s1.Experiments.Chaos.faults = Some 2);
  check_bool "and healed" true
    (List.assoc_opt "partition_healed" s1.Experiments.Chaos.faults = Some 2);
  check_int "the armed append tore" 1 s1.Experiments.Chaos.torn_writes;
  check_bool "and was repaired in-run" true
    (s1.Experiments.Chaos.torn_repaired >= 1);
  check_bool "zombie writes were attempted and all rejected" true
    (s1.Experiments.Chaos.zombie_writes_rejected > 0);
  check_bool "elections happened under fresh epochs" true
    (s1.Experiments.Chaos.epoch_bumps >= 2);
  check_bool "post-run fsck is clean without repair" true
    s1.Experiments.Chaos.fsck.Cluster.clean;
  check_int "no torn record left on disk" 0
    s1.Experiments.Chaos.fsck.Cluster.torn_found;
  let s2 =
    Experiments.Chaos.run ~quick:true ~plan_kind:`Partition ~seed:42
      ~spec:anu_spec ()
  in
  check_bool "partition chaos is byte-reproducible" true (s1 = s2)

(* --- Domain faults: validation, timelines, chaos acceptance --- *)

let error_message f =
  match f () with
  | exception Invalid_argument m -> m
  | _ -> "<no exception raised>"

let test_plan_validation_messages () =
  (* The error pins the offending spec by position and constructor. *)
  Alcotest.(check string) "index and constructor named"
    "Fault.Plan.make: spec 1 (Crash_at): fault time must be >= 0"
    (error_message (fun () ->
         Fault.Plan.make ~seed:1
           [
             Fault.Plan.Report_loss { probability = 0.1 };
             Fault.Plan.Crash_at { at = -1.0; server = 0 };
           ]));
  Alcotest.(check string) "empty domain name"
    "Fault.Plan.make: spec 0 (Domain_crash_at): domain name must be non-empty"
    (error_message (fun () ->
         Fault.Plan.make ~seed:1
           [ Fault.Plan.Domain_crash_at { at = 1.0; domain = "" } ]));
  Alcotest.(check string) "degenerate domain hazard"
    "Fault.Plan.make: spec 2 (Domain_hazard): mttf and mttr must be positive"
    (error_message (fun () ->
         Fault.Plan.make ~seed:1
           [
             Fault.Plan.Report_loss { probability = 0.1 };
             Fault.Plan.Crash_at { at = 0.0; server = 0 };
             Fault.Plan.Domain_hazard { domain = "r"; mttf = 0.0; mttr = 1.0 };
           ]));
  Alcotest.(check string) "zero heal_after on a domain partition"
    "Fault.Plan.make: spec 0 (Domain_partition_at): partition heal_after \
     must be positive"
    (error_message (fun () ->
         Fault.Plan.make ~seed:1
           [
             Fault.Plan.Domain_partition_at
               { at = 1.0; domain = "r"; link = `Cluster; heal_after = 0.0 };
           ]));
  Alcotest.(check string) "negative domain recover time"
    "Fault.Plan.make: spec 0 (Domain_recover_at): fault time must be >= 0"
    (error_message (fun () ->
         Fault.Plan.make ~seed:1
           [ Fault.Plan.Domain_recover_at { at = -0.5; domain = "r" } ]))

let test_plan_domain_timeline () =
  let plan = Fault.Plan.domain_mix ~seed:9 ~duration:1000.0 in
  check_bool "referenced domains in first-mention order" true
    (Fault.Plan.domains plan = [ "rack0"; "rack1" ]);
  let tl = Fault.Plan.timeline plan ~duration:1000.0 in
  check_bool "rack0 partition cut at 0.18d" true
    (List.mem
       (180.0, Fault.Plan.Domain_partition { domain = "rack0"; link = `Cluster })
       tl);
  check_bool "rack0 heals at 0.33d" true
    (List.mem
       (330.0, Fault.Plan.Domain_heal { domain = "rack0"; link = `Cluster })
       tl);
  check_bool "rack1 crashes whole at 0.45d" true
    (List.mem (450.0, Fault.Plan.Domain_crash "rack1") tl);
  check_bool "rack1 recovers at 0.62d" true
    (List.mem (620.0, Fault.Plan.Domain_recover "rack1") tl);
  (* Expansion rewrites every domain event to per-server events at the
     same instant, members in ascending id order, nothing domain-level
     left behind. *)
  let servers_of = function
    | "rack0" -> [ 1; 0 ]
    | "rack1" -> [ 4; 2; 3 ]
    | d -> Alcotest.failf "unexpected domain %s" d
  in
  let expanded = Fault.Plan.expand ~servers_of tl in
  let times = List.map fst expanded in
  check_bool "expansion keeps times non-decreasing" true
    (List.sort compare times = times);
  check_bool "rack1 crash expands to ascending members" true
    (List.filter_map
       (fun (at, f) ->
         match f with
         | Fault.Plan.Crash s when at = 450.0 -> Some s
         | _ -> None)
       expanded
    = [ 2; 3; 4 ]);
  check_bool "no domain-level event survives expansion" true
    (List.for_all
       (fun (_, f) ->
         match f with
         | Fault.Plan.Domain_crash _ | Fault.Plan.Domain_recover _
         | Fault.Plan.Domain_partition _ | Fault.Plan.Domain_heal _ ->
           false
         | _ -> true)
       expanded)

(* Timelines clip at the horizon exactly: events land in [0, duration),
   a partition cut is scheduled iff it starts inside the horizon, and
   its heal iff that also lands inside — for per-server and domain
   variants alike. *)
let prop_timeline_clips_at_horizon =
  QCheck.Test.make ~count:200 ~name:"timeline clips at the horizon"
    QCheck.(pair small_int (triple (int_bound 20) (int_bound 20) (int_bound 20)))
    (fun (seed, (a, h, d)) ->
      (* Halves of integers so [at], [at + heal] and [duration] hit
         exact equality often — the boundary under test. *)
      let at = float_of_int a /. 2.0 in
      let heal = float_of_int (h + 1) /. 2.0 in
      let duration = float_of_int (d + 1) /. 2.0 in
      let plan =
        Fault.Plan.make ~seed
          [
            Fault.Plan.Crash_hazard { server = 0; mttf = 2.0; mttr = 1.0 };
            Fault.Plan.Partition_at
              { at; server = 1; link = `Disk; heal_after = heal };
            Fault.Plan.Domain_hazard { domain = "r"; mttf = 2.0; mttr = 1.0 };
            Fault.Plan.Domain_partition_at
              { at; domain = "r"; link = `Cluster; heal_after = heal };
          ]
      in
      let tl = Fault.Plan.timeline plan ~duration in
      let inside = List.for_all (fun (t, _) -> t >= 0.0 && t < duration) tl in
      let has p = List.exists p tl in
      let cut_ok =
        has (fun (_, f) -> f = Fault.Plan.Partition { server = 1; link = `Disk })
        = (at < duration)
      and heal_ok =
        has (fun (_, f) -> f = Fault.Plan.Heal { server = 1; link = `Disk })
        = (at < duration && at +. heal < duration)
      and dcut_ok =
        has (fun (_, f) ->
            f = Fault.Plan.Domain_partition { domain = "r"; link = `Cluster })
        = (at < duration)
      and dheal_ok =
        has (fun (_, f) ->
            f = Fault.Plan.Domain_heal { domain = "r"; link = `Cluster })
        = (at < duration && at +. heal < duration)
      in
      if not inside then QCheck.Test.fail_report "event outside [0, duration)";
      if not (cut_ok && dcut_ok) then
        QCheck.Test.fail_report "cut scheduled iff at < duration broken";
      if not (heal_ok && dheal_ok) then
        QCheck.Test.fail_report "heal scheduled iff inside horizon broken";
      true)

(* Two domain events at the same instant expand in event order, each
   domain's members in ascending id order — duplicates kept (expand
   sorts, it does not dedupe), so the runner's per-member no-op
   contract is what absorbs overlap, not the plan. *)
let prop_expand_tie_order =
  QCheck.Test.make ~count:200 ~name:"expand keeps tie order and sorts members"
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 5) (int_bound 9))
        (list_of_size Gen.(1 -- 5) (int_bound 9)))
    (fun (ma, mb) ->
      let servers_of = function
        | "a" -> ma
        | "b" -> mb
        | _ -> []
      in
      let expanded =
        Fault.Plan.expand ~servers_of
          [
            (5.0, Fault.Plan.Domain_crash "a");
            (5.0, Fault.Plan.Domain_crash "b");
          ]
      in
      let expect =
        List.map
          (fun s -> (5.0, Fault.Plan.Crash s))
          (List.sort Int.compare ma @ List.sort Int.compare mb)
      in
      expanded = expect)

let test_chaos_domain_mix_acceptance () =
  (* The headline correlated-fault scenario: the delegate's whole rack
     partitions off the cluster at once, later the big rack
     hard-crashes and recovers as single events — zero violations,
     fsck clean, byte-reproducible. *)
  let s1 =
    Experiments.Chaos.run ~quick:true ~plan_kind:`Domain ~seed:42
      ~spec:anu_spec ()
  in
  check_bool "ANU survives the domain mix" true s1.Experiments.Chaos.survived;
  check_int "zero violations" 0 (List.length s1.Experiments.Chaos.violations);
  let fault name = List.assoc_opt name s1.Experiments.Chaos.faults in
  check_bool "one whole-domain crash" true (fault "domain.crash" = Some 1);
  check_bool "one whole-domain recovery" true
    (fault "domain.recover" = Some 1);
  check_bool "one whole-domain partition cut" true
    (fault "domain.partition_cut" = Some 1);
  check_bool "which healed" true (fault "domain.partition_healed" = Some 1);
  check_int "the armed append tore" 1 s1.Experiments.Chaos.torn_writes;
  check_bool "zombie writes from the fenced rack all bounced" true
    (s1.Experiments.Chaos.zombie_writes_rejected > 0);
  check_bool "the survivors re-elected under a fresh epoch" true
    (s1.Experiments.Chaos.epoch_bumps >= 1);
  check_bool "post-run fsck is clean without repair" true
    s1.Experiments.Chaos.fsck.Cluster.clean;
  let s2 =
    Experiments.Chaos.run ~quick:true ~plan_kind:`Domain ~seed:42
      ~spec:anu_spec ()
  in
  check_bool "domain chaos is byte-reproducible" true (s1 = s2)

let test_domain_collateral_both_directions () =
  (* The regression that pins the safety claim in both directions:
     spread-constrained ANU holds the collateral bound at every rack
     count, and the unconstrained twin demonstrably breaks both the
     geometric and the material half of it. *)
  let prefixed ~prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  let f = Experiments.Figures.domain_failure_collateral ~quick:true () in
  (match f.Experiments.Figures.results with
  | [ r2; r3; r5; un ] ->
    List.iter
      (fun (r : Experiments.Runner.result) ->
        check_int
          (r.Experiments.Runner.policy_name ^ " holds the bound")
          0
          (List.length r.Experiments.Runner.violations))
      [ r2; r3; r5 ];
    Alcotest.(check string) "last panel is the unconstrained twin"
      "anu-unconstrained" un.Experiments.Runner.policy_name;
    check_bool "spread violations detected" true
      (List.exists
         (fun (_, what) -> prefixed ~prefix:"domain spread broken" what)
         un.Experiments.Runner.violations);
    check_bool "collateral violations detected" true
      (List.exists
         (fun (_, what) -> prefixed ~prefix:"collateral unbounded" what)
         un.Experiments.Runner.violations)
  | rs -> Alcotest.failf "expected four panels, got %d" (List.length rs));
  let g = Experiments.Figures.domain_failure_collateral ~quick:true () in
  (* Everything the seed determines must replay exactly; only the
     engine's wall-clock self-measurement is exempt. *)
  let virtual_content (fig : Experiments.Figures.figure) =
    List.map
      (fun (r : Experiments.Runner.result) ->
        { r with Experiments.Runner.sim_wall_seconds = 0.0 })
      fig.Experiments.Figures.results
  in
  check_bool "figure is byte-reproducible" true
    (virtual_content f = virtual_content g)

(* --- qcheck: invariants across arbitrary membership interleavings --- *)

(* Op codes: 0 = fail, 1 = recover, 2 = add, 3 = retune,
   4 = delegate crash, 5 = decommission.  Each op carries a server
   index; guards mirror the runner's (never fail the last server,
   never double-fail or double-recover). *)
let prop_interleaving_preserves_invariants =
  QCheck.Test.make ~count:40
    ~name:"half-occupancy + single ownership across fail/recover/add/\
           decommission/retune interleavings"
    QCheck.(
      pair small_int (small_list (pair (int_bound 5) (int_bound 6))))
    (fun (seed, ops) ->
      let names = List.init 24 (Printf.sprintf "qfs-%02d") in
      let sim = Desim.Sim.create () in
      let disk = Shared_disk.create () in
      let catalog = File_set.Catalog.create names in
      let base = [ 0; 1; 2; 3 ] in
      let servers = List.map (fun i -> (Id.of_int i, 1.0)) base in
      let cluster =
        Cluster.create sim ~disk ~catalog ~series_interval:10.0 ~servers ()
      in
      let family = Hashlib.Hash_family.create ~seed:(seed + 1) in
      let policy =
        Placement.Anu.policy
          (Placement.Anu.create ~family
             ~servers:(List.map Id.of_int base)
             ())
      in
      Cluster.assign_initial cluster
        (Placement.Policy.assignment_of policy names);
      let next_id = ref 4 in
      let reconcile () =
        List.iter
          (fun n ->
            let want = policy.Placement.Policy.locate n in
            match Cluster.owner cluster n with
            | Some have when Id.equal have want -> ()
            | Some _ | None -> Cluster.move cluster ~file_set:n ~dst:want)
          names
      in
      let alive () = Cluster.alive_ids cluster in
      let apply (code, k) =
        match code with
        | 0 ->
          (* fail, never the last one standing *)
          let a = alive () in
          if List.length a > 1 then begin
            let id = List.nth a (k mod List.length a) in
            let (_ : string list) = Cluster.fail_server cluster id in
            policy.Placement.Policy.server_failed id;
            reconcile ()
          end
        | 1 ->
          let all = List.init !next_id Id.of_int in
          let dead =
            List.filter
              (fun id ->
                Cluster.mem_server cluster id
                && Server.failed (Cluster.server cluster id))
              all
          in
          if dead <> [] then begin
            let id = List.nth dead (k mod List.length dead) in
            Cluster.recover_server cluster id;
            policy.Placement.Policy.server_added id;
            reconcile ()
          end
        | 2 ->
          if !next_id < 8 then begin
            let id = Id.of_int !next_id in
            incr next_id;
            Cluster.add_server cluster id ~speed:1.0;
            policy.Placement.Policy.server_added id;
            reconcile ()
          end
        | 3 ->
          let reports = Delegate.collect cluster in
          policy.Placement.Policy.rebalance
            {
              Placement.Policy.time = Desim.Sim.now sim;
              reports;
              future_demand = lazy [];
            };
          reconcile ()
        | 4 -> policy.Placement.Policy.delegate_crashed ()
        | 5 ->
          (* decommission: re-address first, then take the machine
             away; the drain is cut short on purpose so interrupted
             moves exercise the orphan path too *)
          let a = alive () in
          if List.length a > 1 then begin
            let id = List.nth a (k mod List.length a) in
            policy.Placement.Policy.server_failed id;
            reconcile ();
            let (_ : string list) = Cluster.fail_server cluster id in
            reconcile ()
          end
        | _ -> ()
      in
      List.iter
        (fun op ->
          apply op;
          Desim.Sim.run sim;
          (* A final sweep adopts anything a cut-short decommission
             orphaned before we judge the ownership invariant. *)
          reconcile ();
          Desim.Sim.run sim;
          match Fault.Invariants.check ~cluster ~policy () with
          | [] -> ()
          | vs ->
            QCheck.Test.fail_reportf "invariant violated after op %a:@.%a"
              (fun ppf (c, k) -> Format.fprintf ppf "(%d,%d)" c k)
              op
              (Format.pp_print_list Fault.Invariants.pp_violation)
              vs)
        ops;
      true)

let suite =
  [
    Alcotest.test_case "timeout: schedule arithmetic" `Quick
      test_timeout_schedule;
    Alcotest.test_case "timeout: seeded jitter" `Quick test_timeout_jitter;
    Alcotest.test_case "plan: validation" `Quick test_plan_validation;
    Alcotest.test_case "plan: timeline edge cases" `Quick
      test_plan_timeline_edge_cases;
    Alcotest.test_case "plan: partition timeline" `Quick
      test_plan_partition_timeline;
    Alcotest.test_case "plan: spec kinds complete" `Quick
      test_plan_spec_kinds_complete;
    Alcotest.test_case "plan: timeline deterministic" `Quick
      test_plan_timeline_deterministic;
    Alcotest.test_case "plan: accessors" `Quick test_plan_accessors;
    Alcotest.test_case "collect_async: complete" `Quick
      test_collect_async_complete;
    Alcotest.test_case "collect_async: degraded quorum" `Quick
      test_collect_async_degraded;
    Alcotest.test_case "collect_async: below quorum skips" `Quick
      test_collect_async_skipped;
    Alcotest.test_case "collect_async: slow reply retries" `Quick
      test_collect_async_slow_reply_retries;
    Alcotest.test_case "quorum arithmetic" `Quick test_quorum;
    Alcotest.test_case "cluster: fail/recover no-op contracts" `Quick
      test_fail_recover_noop_contracts;
    Alcotest.test_case "cluster: mid-move src crash" `Quick
      test_mid_move_crash_src;
    Alcotest.test_case "cluster: mid-move dst crash" `Quick
      test_mid_move_crash_dst;
    Alcotest.test_case "cluster: src crash after flush is harmless" `Quick
      test_src_crash_after_flush_harmless;
    Alcotest.test_case "shared disk: stall factor" `Quick
      test_disk_stall_scales_transfers;
    Alcotest.test_case "invariants: half-occupancy" `Quick
      test_invariants_half_occupancy;
    Alcotest.test_case "invariants: self-check and extra hook" `Quick
      test_invariants_policy_self_check_and_extra;
    Alcotest.test_case "invariants: fresh ANU cluster healthy" `Quick
      test_invariants_real_anu_clean;
    Alcotest.test_case "runner: delegate crash mid-round" `Quick
      test_runner_delegate_crash_mid_round;
    Alcotest.test_case "runner: mid-move src crash survives" `Quick
      test_runner_move_crash_src;
    Alcotest.test_case "runner: mid-move dst crash survives" `Quick
      test_runner_move_crash_dst;
    Alcotest.test_case "runner: report loss degrades, never garbage" `Quick
      test_runner_report_loss_degrades_not_garbage;
    Alcotest.test_case "runner: planted broken invariant caught" `Quick
      test_runner_broken_invariant_caught;
    Alcotest.test_case "runner: decommission drains cleanly" `Quick
      test_runner_decommission_drains_cleanly;
    Alcotest.test_case "runner: fault-free path unchanged" `Quick
      test_faultfree_path_unchanged;
    Alcotest.test_case "chaos: survives and reproduces" `Quick
      test_chaos_survives_and_reproduces;
    Alcotest.test_case "runner: delegate partition fences and heals" `Quick
      test_runner_partition_fences_and_heals;
    Alcotest.test_case "runner: disk partition survives" `Quick
      test_runner_disk_partition_survives;
    Alcotest.test_case "runner: torn ledger append repaired" `Quick
      test_runner_torn_write_repaired;
    Alcotest.test_case "chaos: partition mix acceptance" `Quick
      test_chaos_partition_mix_acceptance;
    Alcotest.test_case "plan: validation messages" `Quick
      test_plan_validation_messages;
    Alcotest.test_case "plan: domain timeline and expansion" `Quick
      test_plan_domain_timeline;
    Alcotest.test_case "chaos: domain mix acceptance" `Quick
      test_chaos_domain_mix_acceptance;
    Alcotest.test_case "figure: domain collateral both directions" `Slow
      test_domain_collateral_both_directions;
    QCheck_alcotest.to_alcotest prop_timeline_clips_at_horizon;
    QCheck_alcotest.to_alcotest prop_expand_tie_order;
    QCheck_alcotest.to_alcotest prop_interleaving_preserves_invariants;
  ]
