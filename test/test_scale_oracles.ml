(* Big-n oracle pins: every incremental/allocation-free rewrite on the
   reconfiguration hot path against the full-recompute implementation
   it replaced.

   - Region_map: random scale/remove/add sequences (n up to 1,000)
     keep the incrementally-patched bucket index equal to a rebuild
     ([index_consistent]), [locate] equal to the flat-index oracle,
     [free_in_partition] equal to restricting the global free set, and
     the structural invariants intact.
   - ANU: the flat-array [apply_domain_spread] returns byte-identical
     weights to the list-based reference, across sizes, rack counts
     and repeated calls on the same reused scratch.
   - Delegate: the fold/array aggregations equal the list-based
     references bit-for-bit.
   - Invariants.Acc: delta-maintained accumulators render the same
     verdicts as a fresh full rebuild, and as the full
     [Invariants.check] oracle, across random mutation rounds. *)

open Placement
module Id = Sharedfs.Server_id
module RM = Region_map
module UI = Hashlib.Unit_interval
module Set = Hashlib.Unit_interval.Set

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ids n = List.init n Id.of_int

let family = Hashlib.Hash_family.create ~seed:2003

(* Deterministic pseudo-weights so a qcheck case needs only one seed,
   not a 1,000-element generated list. *)
let weight_of ~seed i =
  0.01 +. (float_of_int ((seed + (i * 2654435761)) land 0xffff) /. 65536.0)

(* --- Region_map: incremental index vs rebuild oracle --- *)

let partition_seg t j =
  let fp = float_of_int (RM.partitions t) in
  UI.seg (float_of_int j /. fp) (float_of_int (j + 1) /. fp)

let probes = [ 0.0; 0.125; 0.3; 0.5; 0.62; 0.75; 0.9; 0.999 ]

let map_healthy t =
  let fail fmt = Printf.ksprintf (fun m -> QCheck.Test.fail_report m) fmt in
  (match RM.check_invariants t with
  | [] -> ()
  | v :: _ -> fail "invariant: %s" v);
  if not (RM.index_consistent t) then fail "index_consistent false";
  List.iter
    (fun x ->
      if RM.locate t x <> RM.locate_reference t x then
        fail "locate mismatch at %g" x)
    probes;
  let p = RM.partitions t in
  let free = RM.free_set t in
  List.iter
    (fun j ->
      if
        not
          (Set.equal (RM.free_in_partition t j)
             (Set.restrict free (partition_seg t j)))
      then fail "free_in_partition mismatch at j=%d (p=%d)" j p)
    [ 0; p / 3; p / 2; p - 1 ];
  true

let prop_incremental_index_matches_rebuild =
  let gen =
    QCheck.Gen.(
      let* n = 2 -- 1000 in
      let* ops =
        list_size (1 -- 10)
          (frequency
             [
               ( 6,
                 let* seed = 0 -- 10000 in
                 return (`Scale seed) );
               ( 2,
                 let* k = 0 -- 5000 in
                 return (`Remove k) );
               (2, return `Add);
             ])
      in
      return (n, ops))
  in
  let print (n, ops) =
    Printf.sprintf "n=%d ops=[%s]" n
      (String.concat "; "
         (List.map
            (function
              | `Scale s -> Printf.sprintf "Scale %d" s
              | `Remove k -> Printf.sprintf "Remove %d" k
              | `Add -> "Add")
            ops))
  in
  QCheck.Test.make ~count:25
    ~name:"incremental bucket index matches rebuild under random sequences"
    (QCheck.make ~print gen)
    (fun (n, ops) ->
      let t = RM.create ~servers:(ids n) in
      let alive = ref (ids n) in
      let next = ref n in
      List.for_all
        (fun op ->
          (match op with
          | `Scale seed ->
            let targets =
              List.mapi (fun i id -> (id, weight_of ~seed i)) !alive
            in
            if targets <> [] then RM.scale t ~targets
          | `Remove k ->
            if List.length !alive > 1 then begin
              let victim = List.nth !alive (k mod List.length !alive) in
              RM.remove_server t victim;
              alive := List.filter (fun id -> not (Id.equal id victim)) !alive;
              (* remove_server leaves the map under-occupied by design;
                 rescale the survivors back to 1/2, as ANU's
                 server_failed does. *)
              RM.scale t
                ~targets:(List.mapi (fun i id -> (id, weight_of ~seed:k i)) !alive)
            end
          | `Add ->
            let id = Id.of_int !next in
            incr next;
            RM.add_server t id ~target:(0.5 /. float_of_int n);
            alive := !alive @ [ id ]);
          map_healthy t)
        ops
      &&
      (* The journal drains sorted and exactly once. *)
      let changed = RM.drain_changed t in
      List.sort Id.compare changed = changed && RM.drain_changed t = [])

(* --- ANU: flat-array domain spread vs list-based reference --- *)

let rack_topology ~n ~domains =
  Experiments.Scenario.rack_topology
    ~servers:(List.init n (fun i -> (i, 1.0)))
    ~domains ()

let prop_domain_spread_matches_reference =
  let gen =
    QCheck.Gen.(
      let* n = 2 -- 1000 in
      let* domains = 1 -- min 10 n in
      let* seeds = list_size (1 -- 3) (0 -- 10000) in
      return (n, domains, seeds))
  in
  QCheck.Test.make ~count:40
    ~name:"flat-array domain spread equals list-based reference"
    (QCheck.make gen)
    (fun (n, domains, seeds) ->
      let topology = rack_topology ~n ~domains in
      let anu = Anu.create ~family ~topology ~servers:(ids n) () in
      (* Several calls on one instance: the scratch arrays are reused,
         so later calls must not see earlier calls' state. *)
      List.for_all
        (fun seed ->
          let targets =
            List.mapi (fun i id -> (id, weight_of ~seed i)) (ids n)
          in
          Anu.apply_domain_spread anu targets
          = Anu.apply_domain_spread_reference anu targets)
        seeds)

(* --- Delegate: allocation-free aggregation vs reference --- *)

let prop_aggregation_matches_reference =
  let gen =
    QCheck.Gen.(
      list_size (0 -- 40) (pair (float_range 0.0 100.0) (0 -- 50)))
  in
  QCheck.Test.make ~count:200
    ~name:"delegate mean/median equal list-based references"
    (QCheck.make gen)
    (fun raw ->
      let reports =
        List.mapi
          (fun i (latency, requests) ->
            {
              Sharedfs.Delegate.server = Id.of_int i;
              speed_hint = 1.0;
              report =
                {
                  Sharedfs.Server.mean_latency = latency;
                  max_latency = latency;
                  requests;
                };
            })
          raw
      in
      Float.equal
        (Sharedfs.Delegate.mean_latency reports)
        (Sharedfs.Delegate.mean_latency_reference reports)
      && Float.equal
           (Sharedfs.Delegate.median_latency reports)
           (Sharedfs.Delegate.median_latency_reference reports))

(* --- Invariants.Acc: delta rounds vs full recompute --- *)

let make_cluster_n ?topology n =
  let sim = Desim.Sim.create () in
  let disk = Sharedfs.Shared_disk.create () in
  let catalog =
    Sharedfs.File_set.Catalog.create (List.init 8 (Printf.sprintf "fs-%d"))
  in
  let servers = List.init n (fun i -> (Id.of_int i, 1.0)) in
  ( sim,
    Sharedfs.Cluster.create sim ~disk ~catalog ~series_interval:10.0 ~servers
      ?topology () )

(* A policy whose regions the test mutates directly, journalling every
   write — the minimal producer of the [changed_servers] contract. *)
let mutable_policy ~n =
  let measures = Hashtbl.create 16 in
  List.iter
    (fun id -> Hashtbl.replace measures id (0.5 /. float_of_int n))
    (ids n);
  let journal = ref [] in
  let set id m =
    Hashtbl.replace measures id m;
    journal := (id, m) :: !journal
  in
  let policy =
    {
      Policy.name = "mutable";
      locate = (fun _ -> Id.of_int 0);
      rebalance = (fun _ -> ());
      server_failed = (fun _ -> ());
      server_added = (fun _ -> ());
      delegate_crashed = (fun () -> ());
      regions =
        (fun () ->
          Hashtbl.fold (fun id m acc -> (id, m) :: acc) measures []
          |> List.sort (fun (a, _) (b, _) -> Id.compare a b));
      changed_servers =
        (fun () ->
          let l = List.rev !journal in
          journal := [];
          l);
      check = (fun () -> []);
    }
  in
  (policy, set)

let sorted_whats vs =
  List.sort String.compare
    (List.map (fun v -> v.Fault.Invariants.what) vs)

(* Values coarse enough that no sum lands within float drift of a
   verdict threshold (0.5 +- 1e-9, domain caps): every disagreement
   between running sums and a recompute would need ~1e-9 cancellation,
   and these deltas move totals by >= 5e-4. *)
let op_value ~n ~pick =
  match pick mod 5 with
  | 0 -> 0.0
  | 1 -> 0.3
  | 2 -> -0.1
  | 3 -> 2.0 *. (0.5 /. float_of_int n)
  | _ -> 0.5 /. float_of_int n

let prop_acc_matches_full_recompute =
  let gen =
    QCheck.Gen.(
      let* n = 2 -- 1000 in
      let* domains = 1 -- min 10 n in
      let* rounds = list_size (1 -- 6) (list_size (1 -- 3) (pair (0 -- 5000) (0 -- 5000))) in
      return (n, domains, rounds))
  in
  let print (n, domains, rounds) =
    Printf.sprintf "n=%d domains=%d rounds=[%s]" n domains
      (String.concat "; "
         (List.map
            (fun round ->
              String.concat ","
                (List.map
                   (fun (who, pick) -> Printf.sprintf "(%d,%d)" who pick)
                   round))
            rounds))
  in
  QCheck.Test.make ~count:10
    ~name:"delta-maintained invariant accumulators equal full recompute"
    (QCheck.make ~print gen)
    (fun (n, domains, rounds) ->
      let topology = rack_topology ~n ~domains in
      let _sim, cluster = make_cluster_n ~topology n in
      (* Place the catalog evenly across servers so the ownership and
         collateral invariants are clean — the full check then reports
         exactly the accumulator subset. *)
      Sharedfs.Cluster.assign_initial cluster
        (List.init 8 (fun i ->
             (Printf.sprintf "fs-%d" i, Id.of_int (i * n / 8))));
      let policy, set = mutable_policy ~n in
      let acc = Fault.Invariants.Acc.create ~cluster ~policy () in
      List.for_all
        (fun round ->
          List.iter
            (fun (who, pick) ->
              set (Id.of_int (who mod n)) (op_value ~n ~pick))
            round;
          Fault.Invariants.Acc.round acc;
          let delta = sorted_whats (Fault.Invariants.Acc.check acc ~cluster) in
          (* Fresh accumulator = full O(n) rebuild of the same sums. *)
          let fresh = Fault.Invariants.Acc.create ~cluster ~policy () in
          let rebuilt =
            sorted_whats (Fault.Invariants.Acc.check fresh ~cluster)
          in
          (* Full oracle: on this cluster every non-region invariant is
             clean, so the full check's verdicts are exactly the
             accumulator subset's. *)
          let full =
            sorted_whats (Fault.Invariants.check ~cluster ~policy ())
          in
          delta = rebuilt && delta = full)
        rounds)

(* The real producer end to end: a live ANU policy feeding the journal
   through rebalance rounds, with the accumulator agreeing with both a
   fresh rebuild and the full check (all clean) at every round. *)
let test_acc_on_live_anu () =
  let n = 50 in
  let topology = rack_topology ~n ~domains:5 in
  let _sim, cluster = make_cluster_n ~topology n in
  let anu = Anu.create ~family ~topology ~servers:(ids n) () in
  let policy = Anu.policy anu in
  Sharedfs.Cluster.assign_initial cluster
    (Policy.assignment_of policy (List.init 8 (Printf.sprintf "fs-%d")));
  (* Creation drains the initial-build journal entries. *)
  let acc = Fault.Invariants.Acc.create ~cluster ~policy () in
  for round = 1 to 5 do
    let reports =
      List.map
        (fun id ->
          let latency =
            float_of_int (((Id.to_int id * 7) + round) mod 13) +. 1.0
          in
          {
            Sharedfs.Delegate.server = id;
            speed_hint = 1.0;
            report =
              {
                Sharedfs.Server.mean_latency = latency;
                max_latency = latency;
                requests = 100;
              };
          })
        (ids n)
    in
    policy.Policy.rebalance
      { Policy.time = float_of_int round; reports; future_demand = lazy [] };
    Fault.Invariants.Acc.round acc;
    check_int
      (Printf.sprintf "round %d: accumulator clean" round)
      0
      (List.length (Fault.Invariants.Acc.check acc ~cluster));
    let fresh = Fault.Invariants.Acc.create ~cluster ~policy () in
    check_int
      (Printf.sprintf "round %d: fresh rebuild clean" round)
      0
      (List.length (Fault.Invariants.Acc.check fresh ~cluster));
    check_int
      (Printf.sprintf "round %d: full oracle clean" round)
      0
      (List.length (Fault.Invariants.check ~cluster ~policy ()))
  done;
  check_bool "journal drained by the accumulator" true
    (policy.Policy.changed_servers () = [])

let suite =
  [
    QCheck_alcotest.to_alcotest prop_incremental_index_matches_rebuild;
    QCheck_alcotest.to_alcotest prop_domain_spread_matches_reference;
    QCheck_alcotest.to_alcotest prop_aggregation_matches_reference;
    QCheck_alcotest.to_alcotest prop_acc_matches_full_recompute;
    Alcotest.test_case "accumulator on live ANU" `Quick test_acc_on_live_anu;
  ]
