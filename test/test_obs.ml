(* Obs: JSON codec, event round-trips, sinks, metrics, and the
   runner's instrumentation contract (one Delegate_round per
   reconfiguration interval). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let event_t = Alcotest.testable Obs.Event.pp ( = )

(* --- Json codec --- *)

let test_json_round_trip () =
  let open Obs.Json in
  let v =
    Obj
      [
        ("null", Null);
        ("yes", Bool true);
        ("no", Bool false);
        ("int", Num 42.0);
        ("neg", Num (-7.0));
        ("frac", Num 0.1);
        ("pi", Num 3.141592653589793);
        ("tiny", Num 1.2e-17);
        ("str", Str "he said \"hi\"\n\ttab \\ slash");
        ("unicode", Str "caf\xc3\xa9");
        ("list", List [ Num 1.0; Str "two"; List []; Obj [] ]);
      ]
  in
  match of_string (to_string v) with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok v' -> check_bool "structurally equal" true (v = v')

let test_json_parse_escapes () =
  let open Obs.Json in
  (match of_string {|"aAé😀b"|} with
  | Ok (Str s) ->
    Alcotest.(check string)
      "escapes decode to UTF-8" "aA\xc3\xa9\xf0\x9f\x98\x80b" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  check_bool "garbage rejected" true
    (Result.is_error (of_string "{\"unterminated\": "));
  check_bool "trailing junk rejected" true
    (Result.is_error (of_string "[1, 2] extra"))

(* --- Event serialization --- *)

let sample_events =
  [
    Obs.Event.Request_submit
      { time = 0.125; file_set = "fs-001"; op = "open"; client = 3 };
    Obs.Event.Request_complete
      {
        time = 17.3;
        server = 2;
        file_set = "fs-002";
        op = "stat";
        latency = 0.0371;
      };
    Obs.Event.Move_start
      {
        time = 120.0;
        file_set = "fs-003";
        src = Some 1;
        dst = 4;
        flush_seconds = 0.5;
        init_seconds = 1.25;
      };
    Obs.Event.Move_start
      {
        time = 121.0;
        file_set = "fs-orphan";
        src = None;
        dst = 0;
        flush_seconds = 0.0;
        init_seconds = 2.0;
      };
    Obs.Event.Move_end
      { time = 122.75; file_set = "fs-003"; dst = 4; replayed = 7 };
    Obs.Event.Delegate_round
      {
        time = 240.0;
        round = 2;
        delegate = Some 0;
        average = 0.042;
        inputs =
          [
            {
              Obs.Event.server = 0;
              mean_latency = 0.03;
              max_latency = 0.1;
              requests = 150;
              queue_depth = 2;
            };
            {
              Obs.Event.server = 1;
              mean_latency = 0.07;
              max_latency = 0.3;
              requests = 80;
              queue_depth = 5;
            };
          ];
        regions = [ (0, 0.31); (1, 0.19) ];
      };
    Obs.Event.Delegate_round
      {
        time = 360.0;
        round = 3;
        delegate = None;
        average = 0.0;
        inputs = [];
        regions = [];
      };
    Obs.Event.Membership { time = 500.0; server = 4; change = Obs.Event.Failed };
    Obs.Event.Membership
      { time = 800.0; server = 4; change = Obs.Event.Recovered };
    Obs.Event.Membership
      { time = 900.0; server = 5; change = Obs.Event.Added 7.0 };
    Obs.Event.Membership
      { time = 950.0; server = 1; change = Obs.Event.Speed_changed 0.5 };
    Obs.Event.Membership
      { time = 955.0; server = 2; change = Obs.Event.Decommissioned };
    Obs.Event.Rehash_round
      { time = 960.0; trigger = "fail"; checked = 40; moved = 9 };
    Obs.Event.Fault
      {
        time = 970.0;
        server = Some 2;
        file_set = None;
        fault = Obs.Event.Server_crash;
      };
    Obs.Event.Fault
      {
        time = 971.0;
        server = Some 2;
        file_set = None;
        fault = Obs.Event.Server_recover;
      };
    Obs.Event.Fault
      {
        time = 972.0;
        server = None;
        file_set = None;
        fault = Obs.Event.Delegate_crash;
      };
    Obs.Event.Fault
      {
        time = 973.0;
        server = Some 1;
        file_set = None;
        fault = Obs.Event.Report_lost { attempt = 2 };
      };
    Obs.Event.Fault
      {
        time = 974.0;
        server = Some 1;
        file_set = None;
        fault = Obs.Event.Report_delayed { delay = 0.25 };
      };
    Obs.Event.Fault
      {
        time = 975.0;
        server = Some 3;
        file_set = Some "fs-004";
        fault = Obs.Event.Move_interrupted { role = "src" };
      };
    Obs.Event.Fault
      {
        time = 976.0;
        server = None;
        file_set = None;
        fault = Obs.Event.Disk_stall_start { factor = 4.0; duration = 30.0 };
      };
    Obs.Event.Fault
      {
        time = 977.0;
        server = None;
        file_set = None;
        fault = Obs.Event.Disk_stall_end;
      };
    Obs.Event.Round_degraded
      {
        time = 980.0;
        round = 8;
        missing = [ 1; 3 ];
        survivors = 3;
        skipped = false;
      };
    Obs.Event.Round_degraded
      {
        time = 990.0;
        round = 9;
        missing = [ 0; 1; 2 ];
        survivors = 0;
        skipped = true;
      };
    Obs.Event.Span_begin
      {
        time = 1000.0;
        id = 17;
        parent = Some 3;
        name = "queue";
        cat = "request";
        server = Some 2;
        file_set = Some "fs-005";
        epoch = None;
      };
    Obs.Event.Span_begin
      {
        time = 1001.0;
        id = 18;
        parent = None;
        name = "round";
        cat = "round";
        server = None;
        file_set = None;
        epoch = Some 4;
      };
    Obs.Event.Span_end
      {
        time = 1002.5;
        id = 17;
        name = "queue";
        cat = "request";
        server = Some 2;
        outcome = None;
      };
    Obs.Event.Span_end
      {
        time = 1003.0;
        id = 18;
        name = "round";
        cat = "round";
        server = None;
        outcome = Some "applied";
      };
  ]

let test_event_jsonl_round_trip () =
  List.iter
    (fun e ->
      match Obs.Event.of_jsonl (Obs.Event.to_jsonl e) with
      | Error err ->
        Alcotest.failf "%s failed to reparse: %s" (Obs.Event.kind e) err
      | Ok e' -> Alcotest.check event_t (Obs.Event.kind e) e e')
    sample_events

let test_event_kinds_distinct () =
  let kinds = List.sort_uniq compare (List.map Obs.Event.kind sample_events) in
  (* Eleven variants exercised by the samples (the span pair included). *)
  check_int "all eleven kinds exercised" 11 (List.length kinds);
  List.iter
    (fun e ->
      let json = Obs.Event.to_json e in
      Alcotest.(check (option string))
        "type field matches kind" (Some (Obs.Event.kind e))
        Obs.Json.(to_str (member "type" json)))
    sample_events

let test_event_of_jsonl_errors () =
  check_bool "bad json" true (Result.is_error (Obs.Event.of_jsonl "{nope"));
  check_bool "unknown type" true
    (Result.is_error (Obs.Event.of_jsonl {|{"type":"martian","time":1}|}));
  check_bool "missing field" true
    (Result.is_error (Obs.Event.of_jsonl {|{"type":"request_submit"}|}))

(* --- Ring sink --- *)

let nth_submit i =
  Obs.Event.Request_submit
    { time = float_of_int i; file_set = Printf.sprintf "fs-%d" i; op = "open";
      client = 0 }

let test_ring_capacity_eviction () =
  let ring = Obs.Sink.Ring.create ~capacity:4 in
  let sink = Obs.Sink.Ring.sink ring in
  check_int "empty" 0 (Obs.Sink.Ring.length ring);
  for i = 1 to 10 do
    sink.Obs.Sink.emit (nth_submit i)
  done;
  check_int "capped at capacity" 4 (Obs.Sink.Ring.length ring);
  check_int "evictions counted" 6 (Obs.Sink.Ring.dropped ring);
  Alcotest.(check (list event_t))
    "keeps newest, oldest first"
    [ nth_submit 7; nth_submit 8; nth_submit 9; nth_submit 10 ]
    (Obs.Sink.Ring.contents ring);
  Obs.Sink.Ring.clear ring;
  check_int "clear empties" 0 (Obs.Sink.Ring.length ring);
  check_int "clear resets dropped" 0 (Obs.Sink.Ring.dropped ring);
  sink.Obs.Sink.emit (nth_submit 11);
  Alcotest.(check (list event_t))
    "usable after clear" [ nth_submit 11 ]
    (Obs.Sink.Ring.contents ring)

(* --- JSONL sink --- *)

let with_temp_file f =
  let path = Filename.temp_file "obs_test" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_jsonl_file_sink () =
  with_temp_file (fun path ->
      let sink = Obs.Sink.jsonl_file path in
      List.iter sink.Obs.Sink.emit sample_events;
      sink.Obs.Sink.close ();
      let lines =
        String.split_on_char '\n' (read_file path)
        |> List.filter (fun l -> l <> "")
      in
      check_int "one line per event" (List.length sample_events)
        (List.length lines);
      List.iter2
        (fun e line ->
          match Obs.Event.of_jsonl line with
          | Error err -> Alcotest.failf "line failed to parse: %s" err
          | Ok e' -> Alcotest.check event_t "line round-trips" e e')
        sample_events lines)

let test_jsonl_sink_buffers_until_close () =
  with_temp_file (fun path ->
      let sink = Obs.Sink.jsonl_file path in
      List.iter sink.Obs.Sink.emit sample_events;
      (* Below the 64 KiB buffer threshold nothing has hit the file
         yet — the sink batches writes instead of syscall-per-event. *)
      check_int "buffered, not yet written" 0
        (String.length (read_file path));
      sink.Obs.Sink.close ();
      let lines =
        String.split_on_char '\n' (read_file path)
        |> List.filter (fun l -> l <> "")
      in
      check_int "close drains every buffered event"
        (List.length sample_events) (List.length lines))

(* --- Chrome sink --- *)

let test_chrome_file_valid_json () =
  with_temp_file (fun path ->
      let sink = Obs.Sink.chrome_file path in
      List.iter sink.Obs.Sink.emit sample_events;
      sink.Obs.Sink.close ();
      let body = String.trim (read_file path) in
      check_bool "opens with [" true (String.length body > 0 && body.[0] = '[');
      check_bool "closes with ]" true
        (body.[String.length body - 1] = ']');
      match Obs.Json.of_string body with
      | Error e -> Alcotest.failf "chrome trace is not valid JSON: %s" e
      | Ok (Obs.Json.List records) ->
        check_bool "has records" true (List.length records > 0);
        List.iter
          (fun r ->
            let phase = Obs.Json.(to_str (member "ph" r)) in
            check_bool "record has a phase" true (phase <> None);
            check_bool "record has a pid" true
              (Obs.Json.(to_int (member "pid" r)) <> None))
          records;
        (* Request_complete events must appear as complete slices with
           microsecond timestamps. *)
        let slices =
          List.filter
            (fun r -> Obs.Json.(to_str (member "ph" r)) = Some "X")
            records
        in
        check_bool "has X slices" true (List.length slices > 0);
        (* Spans become async begin/end pairs carrying the span id. *)
        let phase ph =
          List.filter
            (fun r -> Obs.Json.(to_str (member "ph" r)) = Some ph)
            records
        in
        check_int "one b record per span begin" 2 (List.length (phase "b"));
        check_int "one e record per span end" 2 (List.length (phase "e"));
        List.iter
          (fun r ->
            check_bool "async record carries the span id" true
              (Obs.Json.(to_str (member "id" r)) <> None))
          (phase "b" @ phase "e")
      | Ok _ -> Alcotest.fail "chrome trace is not a JSON array")

let test_chrome_empty_trace_valid () =
  with_temp_file (fun path ->
      let sink = Obs.Sink.chrome_file path in
      sink.Obs.Sink.close ();
      match Obs.Json.of_string (read_file path) with
      | Ok (Obs.Json.List []) -> ()
      | Ok _ -> Alcotest.fail "expected an empty array"
      | Error e -> Alcotest.failf "empty trace invalid: %s" e)

(* --- Metrics --- *)

let test_counter_gauge () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "c" in
  Obs.Metrics.Counter.incr c;
  Obs.Metrics.Counter.add c 4;
  check_int "counter" 5 (Obs.Metrics.Counter.value c);
  let c' = Obs.Metrics.counter m "c" in
  Obs.Metrics.Counter.incr c';
  check_int "registration idempotent" 6 (Obs.Metrics.Counter.value c);
  let g = Obs.Metrics.gauge m "g" in
  Obs.Metrics.Gauge.set g 2.5;
  Alcotest.(check (float 0.0)) "gauge" 2.5 (Obs.Metrics.Gauge.value g);
  Obs.Metrics.reset m;
  check_int "reset zeroes counters" 0 (Obs.Metrics.Counter.value c);
  Alcotest.(check (float 0.0))
    "reset zeroes gauges" 0.0 (Obs.Metrics.Gauge.value g)

(* The histogram estimates percentiles by interpolating within the
   bucket that holds the target rank, so against the exact retained-
   sample percentile the error is bounded by one bucket width. *)
let test_histogram_percentiles_vs_stat () =
  let bounds = Array.init 100 (fun i -> float_of_int (i + 1)) in
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram ~bounds m "h" in
  let sample = Desim.Stat.Sample.create () in
  let rng = Desim.Rng.create 11 in
  for _ = 1 to 5_000 do
    (* Skewed over [0, 100): squaring concentrates mass near zero, so
       the test covers sparsely- and densely-populated buckets. *)
    let u = Desim.Rng.float rng in
    let x = u *. u *. 100.0 in
    Obs.Metrics.Histogram.observe h x;
    Desim.Stat.Sample.add sample x
  done;
  check_int "counts agree" (Desim.Stat.Sample.count sample)
    (Obs.Metrics.Histogram.count h);
  Alcotest.(check (float 1e-9))
    "means agree"
    (Desim.Stat.Sample.mean sample)
    (Obs.Metrics.Histogram.mean h);
  Alcotest.(check (float 1e-9))
    "max agrees"
    (Desim.Stat.Sample.max_value sample)
    (Obs.Metrics.Histogram.max_value h);
  List.iter
    (fun p ->
      let exact = Desim.Stat.Sample.percentile sample p in
      let approx = Obs.Metrics.Histogram.percentile h p in
      check_bool
        (Printf.sprintf "p%.0f within one bucket (exact %.3f, approx %.3f)" p
           exact approx)
        true
        (abs_float (exact -. approx) <= 1.0 +. 1e-9))
    [ 10.0; 50.0; 90.0; 95.0; 99.0 ]

let test_histogram_overflow_and_empty () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram ~bounds:[| 1.0; 2.0 |] m "h" in
  Alcotest.(check (float 0.0))
    "empty percentile" 0.0
    (Obs.Metrics.Histogram.percentile h 50.0);
  (* Values beyond the last bound land in the overflow bucket; the
     percentile clamps to the observed max rather than inventing an
     upper edge. *)
  List.iter (Obs.Metrics.Histogram.observe h) [ 5.0; 6.0; 7.0 ];
  Alcotest.(check (float 1e-9))
    "overflow percentile clamps to max" 7.0
    (Obs.Metrics.Histogram.percentile h 99.0);
  Alcotest.(check (float 1e-9))
    "min tracked" 5.0
    (Obs.Metrics.Histogram.min_value h)

let test_snapshot_sorted () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.Counter.incr (Obs.Metrics.counter m "zeta");
  Obs.Metrics.Counter.incr (Obs.Metrics.counter m "alpha");
  Obs.Metrics.Histogram.observe (Obs.Metrics.histogram m "lat") 0.5;
  let snap = Obs.Metrics.snapshot m in
  Alcotest.(check (list string))
    "counters sorted" [ "alpha"; "zeta" ]
    (List.map fst snap.Obs.Metrics.counters);
  check_int "histogram present" 1 (List.length snap.Obs.Metrics.histograms);
  (* pp_snapshot must render without raising. *)
  ignore (Format.asprintf "%a" Obs.Metrics.pp_snapshot snap)

(* --- Ctx --- *)

let test_ctx_null_and_fanout () =
  check_bool "null not tracing" false (Obs.Ctx.tracing Obs.Ctx.null);
  check_bool "null has no metrics" true (Obs.Ctx.metrics Obs.Ctx.null = None);
  Obs.Ctx.emit Obs.Ctx.null (nth_submit 1);
  (* emit fans out to every sink in order *)
  let r1 = Obs.Sink.Ring.create ~capacity:8 in
  let r2 = Obs.Sink.Ring.create ~capacity:8 in
  let ctx =
    Obs.Ctx.create
      ~sinks:[ Obs.Sink.Ring.sink r1; Obs.Sink.Ring.sink r2 ]
      ()
  in
  check_bool "tracing with sinks" true (Obs.Ctx.tracing ctx);
  Obs.Ctx.emit ctx (nth_submit 2);
  check_int "first sink saw it" 1 (Obs.Sink.Ring.length r1);
  check_int "second sink saw it" 1 (Obs.Sink.Ring.length r2);
  Obs.Ctx.close ctx

(* --- Runner integration --- *)

let small_trace =
  Workload.Synthetic.generate
    {
      Workload.Synthetic.default_config with
      Workload.Synthetic.file_sets = 40;
      requests = 4_000;
      duration = 2_000.0;
    }

let count_kind events kind =
  List.length (List.filter (fun e -> Obs.Event.kind e = kind) events)

let test_runner_emits_rounds_and_requests () =
  let ring = Obs.Sink.Ring.create ~capacity:50_000 in
  let metrics = Obs.Metrics.create () in
  let obs = Obs.Ctx.create ~sinks:[ Obs.Sink.Ring.sink ring ] ~metrics () in
  let r =
    Experiments.Runner.run Experiments.Scenario.default
      (Experiments.Scenario.Anu Placement.Anu.default_config)
      ~trace:small_trace ~obs ()
  in
  let events = Obs.Sink.Ring.contents ring in
  check_int "nothing evicted" 0 (Obs.Sink.Ring.dropped ring);
  (* The instrumentation contract: exactly one Delegate_round event per
     reconfiguration interval (2000 s / 120 s = 16). *)
  check_int "one Delegate_round per interval" r.Experiments.Runner.reconfig_rounds
    (count_kind events "delegate_round");
  check_int "expected 16 rounds on this trace" 16
    r.Experiments.Runner.reconfig_rounds;
  check_int "one submit event per request" r.Experiments.Runner.submitted
    (count_kind events "request_submit");
  check_int "one complete event per request" r.Experiments.Runner.completed
    (count_kind events "request_complete");
  check_int "one rehash sweep per round" r.Experiments.Runner.reconfig_rounds
    (count_kind events "rehash_round");
  check_int "move events paired"
    (count_kind events "move_start")
    (count_kind events "move_end");
  (* Delegate rounds carry per-server inputs and (for ANU) the tuned
     region measures. *)
  List.iter
    (fun e ->
      match e with
      | Obs.Event.Delegate_round { inputs; regions; delegate; _ } ->
        check_int "inputs from all five servers" 5 (List.length inputs);
        check_int "regions for all five servers" 5 (List.length regions);
        check_bool "delegate elected" true (delegate <> None)
      | _ -> ())
    events;
  (* Metrics agree with the result's own bookkeeping. *)
  match r.Experiments.Runner.metrics with
  | None -> Alcotest.fail "expected a metrics snapshot"
  | Some snap ->
    let counter name =
      match List.assoc_opt name snap.Obs.Metrics.counters with
      | Some v -> v
      | None -> Alcotest.failf "missing counter %s" name
    in
    check_int "requests.submitted" r.Experiments.Runner.submitted
      (counter "requests.submitted");
    check_int "requests.completed" r.Experiments.Runner.completed
      (counter "requests.completed");
    check_int "moves.started"
      (List.length r.Experiments.Runner.moves)
      (counter "moves.started");
    let latency =
      match List.assoc_opt "request.latency" snap.Obs.Metrics.histograms with
      | Some h -> h
      | None -> Alcotest.fail "missing request.latency histogram"
    in
    check_int "latency histogram count" r.Experiments.Runner.completed
      latency.Obs.Metrics.count;
    check_bool "latency p95 sane" true
      (latency.Obs.Metrics.p95 > 0.0
      && latency.Obs.Metrics.p95 <= latency.Obs.Metrics.max)

let test_runner_membership_events () =
  let ring = Obs.Sink.Ring.create ~capacity:50_000 in
  let obs = Obs.Ctx.create ~sinks:[ Obs.Sink.Ring.sink ring ] () in
  let events_script =
    [
      { Experiments.Runner.at = 500.0; action = Experiments.Runner.Fail 4 };
      { Experiments.Runner.at = 900.0; action = Experiments.Runner.Recover 4 };
    ]
  in
  let (_ : Experiments.Runner.result) =
    Experiments.Runner.run Experiments.Scenario.default
      (Experiments.Scenario.Anu Placement.Anu.default_config)
      ~trace:small_trace ~events:events_script ~obs ()
  in
  let events = Obs.Sink.Ring.contents ring in
  let membership =
    List.filter_map
      (function
        | Obs.Event.Membership { server; change; _ } -> Some (server, change)
        | _ -> None)
      events
  in
  Alcotest.(check bool)
    "fail then recover observed" true
    (membership = [ (4, Obs.Event.Failed); (4, Obs.Event.Recovered) ]);
  let rehash_triggers =
    List.filter_map
      (function
        | Obs.Event.Rehash_round { trigger; _ } -> Some trigger | _ -> None)
      events
  in
  check_bool "fail triggers a rehash sweep" true
    (List.mem "fail" rehash_triggers);
  check_bool "recover triggers a rehash sweep" true
    (List.mem "recover" rehash_triggers)

let test_runner_unobserved_unchanged () =
  (* The null context must not perturb the simulation. *)
  let spec = Experiments.Scenario.Anu Placement.Anu.default_config in
  let plain =
    Experiments.Runner.run Experiments.Scenario.default spec
      ~trace:small_trace ()
  in
  let ring = Obs.Sink.Ring.create ~capacity:50_000 in
  let obs = Obs.Ctx.create ~sinks:[ Obs.Sink.Ring.sink ring ] () in
  let observed =
    Experiments.Runner.run Experiments.Scenario.default spec
      ~trace:small_trace ~obs ()
  in
  Alcotest.(check (float 1e-12))
    "identical means" plain.Experiments.Runner.overall_mean
    observed.Experiments.Runner.overall_mean;
  check_int "identical moves"
    (List.length plain.Experiments.Runner.moves)
    (List.length observed.Experiments.Runner.moves);
  check_bool "plain run has no metrics" true
    (plain.Experiments.Runner.metrics = None)

let suite =
  [
    Alcotest.test_case "json round-trip" `Quick test_json_round_trip;
    Alcotest.test_case "json escapes and errors" `Quick test_json_parse_escapes;
    Alcotest.test_case "event jsonl round-trip" `Quick
      test_event_jsonl_round_trip;
    Alcotest.test_case "event kinds distinct" `Quick test_event_kinds_distinct;
    Alcotest.test_case "event decode errors" `Quick test_event_of_jsonl_errors;
    Alcotest.test_case "ring capacity and eviction" `Quick
      test_ring_capacity_eviction;
    Alcotest.test_case "jsonl file sink" `Quick test_jsonl_file_sink;
    Alcotest.test_case "jsonl sink buffers until close" `Quick
      test_jsonl_sink_buffers_until_close;
    Alcotest.test_case "chrome trace valid json" `Quick
      test_chrome_file_valid_json;
    Alcotest.test_case "chrome empty trace valid" `Quick
      test_chrome_empty_trace_valid;
    Alcotest.test_case "counter and gauge" `Quick test_counter_gauge;
    Alcotest.test_case "histogram percentiles vs Stat" `Quick
      test_histogram_percentiles_vs_stat;
    Alcotest.test_case "histogram overflow and empty" `Quick
      test_histogram_overflow_and_empty;
    Alcotest.test_case "snapshot sorted" `Quick test_snapshot_sorted;
    Alcotest.test_case "ctx null and fan-out" `Quick test_ctx_null_and_fanout;
    Alcotest.test_case "runner emits rounds and requests" `Quick
      test_runner_emits_rounds_and_requests;
    Alcotest.test_case "runner membership events" `Quick
      test_runner_membership_events;
    Alcotest.test_case "unobserved run unchanged" `Quick
      test_runner_unobserved_unchanged;
  ]
