(* The claim-validation harness itself, plus delegate-crash handling
   and sparkline rendering. *)

let check_bool = Alcotest.(check bool)

let test_delegate_crash_forgets_history () =
  let family = Hashlib.Hash_family.create ~seed:3 in
  let servers = List.init 2 Sharedfs.Server_id.of_int in
  let config =
    {
      Placement.Anu.default_config with
      Placement.Anu.heuristics = Placement.Heuristics.divergent_only;
    }
  in
  let t = Placement.Anu.create ~config ~family ~servers () in
  let report id latency =
    {
      Sharedfs.Delegate.server = Sharedfs.Server_id.of_int id;
      speed_hint = 1.0;
      report =
        {
          Sharedfs.Server.mean_latency = latency;
          max_latency = latency;
          requests = 10;
        };
    }
  in
  let feedback reports =
    { Placement.Policy.time = 0.0; reports; future_demand = lazy [] }
  in
  (* Establish history: server 0 at 100ms. *)
  Placement.Anu.rebalance t (feedback [ report 0 100.0; report 1 10.0 ]);
  let m_before = Placement.Region_map.measure_of (Placement.Anu.region_map t)
      (Sharedfs.Server_id.of_int 0) in
  (* Server 0 still above average but falling: divergent blocks the
     shrink. *)
  Placement.Anu.rebalance t (feedback [ report 0 80.0; report 1 10.0 ]);
  let m_blocked = Placement.Region_map.measure_of (Placement.Anu.region_map t)
      (Sharedfs.Server_id.of_int 0) in
  Alcotest.(check (float 1e-9)) "divergent blocked the shrink" m_before m_blocked;
  (* Delegate crashes; the fresh delegate has no history, so the same
     falling-but-overloaded report now acts. *)
  Placement.Anu.forget_history t;
  Placement.Anu.rebalance t (feedback [ report 0 60.0; report 1 10.0 ]);
  let m_after = Placement.Region_map.measure_of (Placement.Anu.region_map t)
      (Sharedfs.Server_id.of_int 0) in
  check_bool "acted without history" true (m_after < m_blocked)

let test_runner_delegate_crash_event () =
  let trace =
    Workload.Synthetic.generate
      {
        Workload.Synthetic.default_config with
        Workload.Synthetic.file_sets = 30;
        requests = 2_000;
        duration = 1_000.0;
      }
  in
  let events =
    [ { Experiments.Runner.at = 300.0; action = Experiments.Runner.Delegate_crash } ]
  in
  let r =
    Experiments.Runner.run Experiments.Scenario.default
      (Experiments.Scenario.Anu Placement.Anu.default_config)
      ~trace ~events ()
  in
  Alcotest.(check int) "still completes" r.Experiments.Runner.submitted
    r.Experiments.Runner.completed

let test_sparkline () =
  let point start mean count =
    { Desim.Timeseries.bucket_start = start; mean; count; max = mean }
  in
  let line =
    Experiments.Report.sparkline
      [ point 0.0 0.0 0; point 1.0 0.05 3; point 2.0 1.0 5 ]
      ~ceiling:1.0
  in
  (* Empty bucket renders as a dot; the full bucket as the top
     block. *)
  check_bool "dot for empty" true (String.length line > 3 && line.[0] = '.');
  check_bool "has blocks" true (String.length line = 7)

let test_validate_quick () =
  let checks = Experiments.Validate.run ~quick:true () in
  check_bool "ran checks" true (List.length checks >= 10);
  List.iter
    (fun c ->
      if not c.Experiments.Validate.ok then
        Alcotest.failf "claim failed: %s (%s)" c.Experiments.Validate.name
          c.Experiments.Validate.detail)
    checks

let suite =
  [
    Alcotest.test_case "delegate crash forgets history" `Quick
      test_delegate_crash_forgets_history;
    Alcotest.test_case "runner delegate crash event" `Slow
      test_runner_delegate_crash_event;
    Alcotest.test_case "sparkline" `Quick test_sparkline;
    Alcotest.test_case "validate quick" `Slow test_validate_quick;
  ]
