(* Telemetry: the space-saving sketch's exact/overestimate contract,
   per-server series bookkeeping, and the runner integration (per-run
   isolated registries, snapshots that agree with the result's own
   counts). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let submit tl ~time ~file_set = Obs.Telemetry.observe_submit tl ~time ~file_set

(* Below capacity the sketch is an exact counter: every entry reports
   its true frequency with overestimate 0, ranked by count then name. *)
let test_sketch_exact_under_capacity () =
  let tl = Obs.Telemetry.create ~interval:10.0 ~top_k:4 () in
  List.iter
    (fun (time, file_set) -> submit tl ~time ~file_set)
    [
      (0.0, "a"); (1.0, "b"); (2.0, "a"); (3.0, "c"); (4.0, "a"); (5.0, "b");
    ];
  let s = Obs.Telemetry.snapshot tl ~until:10.0 in
  check_int "total requests" 6 s.Obs.Telemetry.total_requests;
  match s.Obs.Telemetry.heavy_hitters with
  | [ h1; h2; h3 ] ->
    Alcotest.(check string) "top" "a" h1.Obs.Telemetry.file_set;
    check_int "top count" 3 h1.Obs.Telemetry.count;
    check_int "top exact" 0 h1.Obs.Telemetry.overestimate;
    Alcotest.(check string) "second" "b" h2.Obs.Telemetry.file_set;
    check_int "second count" 2 h2.Obs.Telemetry.count;
    Alcotest.(check string) "third" "c" h3.Obs.Telemetry.file_set;
    check_int "third exact" 0 h3.Obs.Telemetry.overestimate
  | hs -> Alcotest.failf "expected three heavy hitters, got %d" (List.length hs)

(* Past capacity the newcomer inherits the evicted minimum's count as a
   floor and carries it as its overestimate bound, so consumers can
   separate exact counts from inherited ones. *)
let test_sketch_eviction_overestimate () =
  let tl = Obs.Telemetry.create ~interval:10.0 ~top_k:2 () in
  List.iter
    (fun (time, file_set) -> submit tl ~time ~file_set)
    [ (0.0, "a"); (1.0, "a"); (2.0, "b"); (3.0, "c") ];
  let s = Obs.Telemetry.snapshot tl ~until:10.0 in
  match s.Obs.Telemetry.heavy_hitters with
  | [ h1; h2 ] ->
    (* "c" evicted "b" (the minimum, count 1) and inherited its count:
       reported count 2, of which up to 1 may be inherited. *)
    Alcotest.(check string) "kept the true heavy hitter" "a"
      h1.Obs.Telemetry.file_set;
    check_int "exact count" 2 h1.Obs.Telemetry.count;
    check_int "no overestimate" 0 h1.Obs.Telemetry.overestimate;
    Alcotest.(check string) "newcomer replaced the minimum" "c"
      h2.Obs.Telemetry.file_set;
    check_int "inherited floor plus one" 2 h2.Obs.Telemetry.count;
    check_int "overestimate bound" 1 h2.Obs.Telemetry.overestimate
  | hs -> Alcotest.failf "expected two heavy hitters, got %d" (List.length hs)

(* Per-server bookkeeping: busy seconds accumulate from service
   observations, utilization is busy/until, request counts come from
   completions, and every series closes at the snapshot horizon. *)
let test_server_summaries () =
  let tl = Obs.Telemetry.create ~interval:10.0 () in
  Obs.Telemetry.observe_service tl ~time:1.0 ~server:0 ~service:2.0;
  Obs.Telemetry.observe_complete tl ~time:3.0 ~server:0 ~queue_depth:1
    ~latency:2.5;
  Obs.Telemetry.observe_service tl ~time:12.0 ~server:0 ~service:3.0;
  Obs.Telemetry.observe_complete tl ~time:15.0 ~server:0 ~queue_depth:0
    ~latency:3.0;
  Obs.Telemetry.observe_service tl ~time:4.0 ~server:2 ~service:1.0;
  Obs.Telemetry.observe_complete tl ~time:5.0 ~server:2 ~queue_depth:4
    ~latency:1.0;
  let s = Obs.Telemetry.snapshot tl ~until:20.0 in
  match s.Obs.Telemetry.servers with
  | [ s0; s2 ] ->
    check_int "sorted by id: first" 0 s0.Obs.Telemetry.server;
    check_int "sorted by id: second" 2 s2.Obs.Telemetry.server;
    check_int "server 0 requests" 2 s0.Obs.Telemetry.requests;
    Alcotest.(check (float 1e-9))
      "server 0 busy seconds" 5.0 s0.Obs.Telemetry.busy_seconds;
    Alcotest.(check (float 1e-9))
      "server 0 utilization" 0.25 s0.Obs.Telemetry.utilization;
    (* finish at 20.0 materializes buckets 0, 10 and 20 *)
    check_int "series span the horizon" 3
      (List.length s0.Obs.Telemetry.occupancy);
    check_int "server 2 requests" 1 s2.Obs.Telemetry.requests
  | ss -> Alcotest.failf "expected two servers, got %d" (List.length ss)

let small_trace =
  Workload.Synthetic.generate
    {
      Workload.Synthetic.default_config with
      Workload.Synthetic.file_sets = 40;
      requests = 2_000;
      duration = 2_000.0;
    }

let run_with_obs obs =
  Experiments.Runner.run Experiments.Scenario.default
    (Experiments.Scenario.Anu Placement.Anu.default_config)
    ~trace:small_trace ~obs ()

let run_with_telemetry () =
  run_with_obs (Obs.Ctx.create ~telemetry:(Obs.Telemetry.create ()) ())

(* The runner integration: a telemetry-carrying context yields a
   per-run snapshot whose totals agree with the result's own
   bookkeeping. *)
let test_runner_telemetry_snapshot () =
  let r = run_with_telemetry () in
  match r.Experiments.Runner.telemetry with
  | None -> Alcotest.fail "expected a telemetry snapshot"
  | Some s ->
    check_int "total requests = submitted" r.Experiments.Runner.submitted
      s.Obs.Telemetry.total_requests;
    let per_server =
      List.fold_left
        (fun acc sv -> acc + sv.Obs.Telemetry.requests)
        0 s.Obs.Telemetry.servers
    in
    check_int "per-server requests sum to completed"
      r.Experiments.Runner.completed per_server;
    let rate_total =
      List.fold_left
        (fun acc (p : Desim.Timeseries.point) -> acc + p.Desim.Timeseries.count)
        0 s.Obs.Telemetry.request_rate
    in
    check_int "request-rate series sums to submitted"
      r.Experiments.Runner.submitted rate_total;
    check_bool "heavy hitters found" true
      (s.Obs.Telemetry.heavy_hitters <> []);
    List.iter
      (fun sv ->
        check_bool "utilization in [0,1]" true
          (sv.Obs.Telemetry.utilization >= 0.0
          && sv.Obs.Telemetry.utilization <= 1.0))
      s.Obs.Telemetry.servers;
    (* The JSON payload must parse back and expose the same totals. *)
    let json = Obs.Telemetry.snapshot_to_json s in
    (match Obs.Json.of_string (Obs.Json.to_string json) with
    | Error e -> Alcotest.failf "telemetry JSON invalid: %s" e
    | Ok j ->
      Alcotest.(check (option int))
        "JSON total_requests"
        (Some s.Obs.Telemetry.total_requests)
        Obs.Json.(to_int (member "total_requests" j)));
    ignore (Format.asprintf "%a" Obs.Telemetry.pp_snapshot s)

(* Ctx.isolated gives every run a fresh registry derived from the
   attached one's config: two runs off the SAME context must produce
   equal snapshots (no cross-run accumulation in a shared registry). *)
let test_runner_telemetry_isolated_per_run () =
  let obs = Obs.Ctx.create ~telemetry:(Obs.Telemetry.create ()) () in
  let a = run_with_obs obs in
  let b = run_with_obs obs in
  check_bool "telemetry present" true (a.Experiments.Runner.telemetry <> None);
  check_bool "equal snapshots across runs off one context" true
    (a.Experiments.Runner.telemetry = b.Experiments.Runner.telemetry)

(* The big-n series cap: scalar totals stay exact for every server, at
   most [max_tracked_servers] carry series at a time, and a busy
   server overtaking the smallest tracked total evicts it
   (space-saving over servers). *)
let test_max_tracked_servers_cap () =
  let tl =
    Obs.Telemetry.create ~interval:10.0 ~max_tracked_servers:2 ()
  in
  let complete ~time ~server =
    Obs.Telemetry.observe_service tl ~time ~server ~service:1.0;
    Obs.Telemetry.observe_complete tl ~time ~server ~queue_depth:0
      ~latency:0.5
  in
  (* Servers 0 and 1 claim the two slots; then server 2 completes more
     than either and must take a slot over. *)
  complete ~time:0.0 ~server:0;
  complete ~time:1.0 ~server:1;
  complete ~time:2.0 ~server:1;
  List.iter (fun time -> complete ~time ~server:2) [ 3.0; 4.0; 5.0; 6.0 ];
  let s = Obs.Telemetry.snapshot tl ~until:10.0 in
  check_int "every server reported" 3 (List.length s.Obs.Telemetry.servers);
  let by_id id =
    List.find (fun sv -> sv.Obs.Telemetry.server = id) s.Obs.Telemetry.servers
  in
  (* Exact scalars for all, including the evicted server 0. *)
  check_int "server 0 requests exact" 1 (by_id 0).Obs.Telemetry.requests;
  check_int "server 1 requests exact" 2 (by_id 1).Obs.Telemetry.requests;
  check_int "server 2 requests exact" 4 (by_id 2).Obs.Telemetry.requests;
  let has_series sv = sv.Obs.Telemetry.latency <> [] in
  check_int "at most two servers carry series" 2
    (List.length (List.filter has_series s.Obs.Telemetry.servers));
  check_bool "hot newcomer tracked" true (has_series (by_id 2));
  check_bool "coldest server evicted" false (has_series (by_id 0))

let suite =
  [
    Alcotest.test_case "sketch exact under capacity" `Quick
      test_sketch_exact_under_capacity;
    Alcotest.test_case "max_tracked_servers cap" `Quick
      test_max_tracked_servers_cap;
    Alcotest.test_case "sketch eviction overestimate" `Quick
      test_sketch_eviction_overestimate;
    Alcotest.test_case "server summaries" `Quick test_server_summaries;
    Alcotest.test_case "runner telemetry snapshot" `Quick
      test_runner_telemetry_snapshot;
    Alcotest.test_case "telemetry isolated per run" `Quick
      test_runner_telemetry_isolated_per_run;
  ]
