(* Telemetry: the space-saving sketch's exact/overestimate contract,
   per-server series bookkeeping, and the runner integration (per-run
   isolated registries, snapshots that agree with the result's own
   counts). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let submit tl ~time ~file_set = Obs.Telemetry.observe_submit tl ~time ~file_set

(* Below capacity the sketch is an exact counter: every entry reports
   its true frequency with overestimate 0, ranked by count then name. *)
let test_sketch_exact_under_capacity () =
  let tl = Obs.Telemetry.create ~interval:10.0 ~top_k:4 () in
  List.iter
    (fun (time, file_set) -> submit tl ~time ~file_set)
    [
      (0.0, "a"); (1.0, "b"); (2.0, "a"); (3.0, "c"); (4.0, "a"); (5.0, "b");
    ];
  let s = Obs.Telemetry.snapshot tl ~until:10.0 in
  check_int "total requests" 6 s.Obs.Telemetry.total_requests;
  match s.Obs.Telemetry.heavy_hitters with
  | [ h1; h2; h3 ] ->
    Alcotest.(check string) "top" "a" h1.Obs.Telemetry.file_set;
    check_int "top count" 3 h1.Obs.Telemetry.count;
    check_int "top exact" 0 h1.Obs.Telemetry.overestimate;
    Alcotest.(check string) "second" "b" h2.Obs.Telemetry.file_set;
    check_int "second count" 2 h2.Obs.Telemetry.count;
    Alcotest.(check string) "third" "c" h3.Obs.Telemetry.file_set;
    check_int "third exact" 0 h3.Obs.Telemetry.overestimate
  | hs -> Alcotest.failf "expected three heavy hitters, got %d" (List.length hs)

(* Past capacity the newcomer inherits the evicted minimum's count as a
   floor and carries it as its overestimate bound, so consumers can
   separate exact counts from inherited ones. *)
let test_sketch_eviction_overestimate () =
  let tl = Obs.Telemetry.create ~interval:10.0 ~top_k:2 () in
  List.iter
    (fun (time, file_set) -> submit tl ~time ~file_set)
    [ (0.0, "a"); (1.0, "a"); (2.0, "b"); (3.0, "c") ];
  let s = Obs.Telemetry.snapshot tl ~until:10.0 in
  match s.Obs.Telemetry.heavy_hitters with
  | [ h1; h2 ] ->
    (* "c" evicted "b" (the minimum, count 1) and inherited its count:
       reported count 2, of which up to 1 may be inherited. *)
    Alcotest.(check string) "kept the true heavy hitter" "a"
      h1.Obs.Telemetry.file_set;
    check_int "exact count" 2 h1.Obs.Telemetry.count;
    check_int "no overestimate" 0 h1.Obs.Telemetry.overestimate;
    Alcotest.(check string) "newcomer replaced the minimum" "c"
      h2.Obs.Telemetry.file_set;
    check_int "inherited floor plus one" 2 h2.Obs.Telemetry.count;
    check_int "overestimate bound" 1 h2.Obs.Telemetry.overestimate
  | hs -> Alcotest.failf "expected two heavy hitters, got %d" (List.length hs)

(* Per-server bookkeeping: busy seconds accumulate from service
   observations, utilization is busy/until, request counts come from
   completions, and every series closes at the snapshot horizon. *)
let test_server_summaries () =
  let tl = Obs.Telemetry.create ~interval:10.0 () in
  Obs.Telemetry.observe_service tl ~time:1.0 ~server:0 ~service:2.0;
  Obs.Telemetry.observe_complete tl ~time:3.0 ~server:0 ~queue_depth:1
    ~latency:2.5;
  Obs.Telemetry.observe_service tl ~time:12.0 ~server:0 ~service:3.0;
  Obs.Telemetry.observe_complete tl ~time:15.0 ~server:0 ~queue_depth:0
    ~latency:3.0;
  Obs.Telemetry.observe_service tl ~time:4.0 ~server:2 ~service:1.0;
  Obs.Telemetry.observe_complete tl ~time:5.0 ~server:2 ~queue_depth:4
    ~latency:1.0;
  let s = Obs.Telemetry.snapshot tl ~until:20.0 in
  match s.Obs.Telemetry.servers with
  | [ s0; s2 ] ->
    check_int "sorted by id: first" 0 s0.Obs.Telemetry.server;
    check_int "sorted by id: second" 2 s2.Obs.Telemetry.server;
    check_int "server 0 requests" 2 s0.Obs.Telemetry.requests;
    Alcotest.(check (float 1e-9))
      "server 0 busy seconds" 5.0 s0.Obs.Telemetry.busy_seconds;
    Alcotest.(check (float 1e-9))
      "server 0 utilization" 0.25 s0.Obs.Telemetry.utilization;
    (* finish at 20.0 materializes buckets 0, 10 and 20 *)
    check_int "series span the horizon" 3
      (List.length s0.Obs.Telemetry.occupancy);
    check_int "server 2 requests" 1 s2.Obs.Telemetry.requests
  | ss -> Alcotest.failf "expected two servers, got %d" (List.length ss)

let small_trace =
  Workload.Synthetic.generate
    {
      Workload.Synthetic.default_config with
      Workload.Synthetic.file_sets = 40;
      requests = 2_000;
      duration = 2_000.0;
    }

let run_with_obs obs =
  Experiments.Runner.run Experiments.Scenario.default
    (Experiments.Scenario.Anu Placement.Anu.default_config)
    ~trace:small_trace ~obs ()

let run_with_telemetry () =
  run_with_obs (Obs.Ctx.create ~telemetry:(Obs.Telemetry.create ()) ())

(* The runner integration: a telemetry-carrying context yields a
   per-run snapshot whose totals agree with the result's own
   bookkeeping. *)
let test_runner_telemetry_snapshot () =
  let r = run_with_telemetry () in
  match r.Experiments.Runner.telemetry with
  | None -> Alcotest.fail "expected a telemetry snapshot"
  | Some s ->
    check_int "total requests = submitted" r.Experiments.Runner.submitted
      s.Obs.Telemetry.total_requests;
    let per_server =
      List.fold_left
        (fun acc sv -> acc + sv.Obs.Telemetry.requests)
        0 s.Obs.Telemetry.servers
    in
    check_int "per-server requests sum to completed"
      r.Experiments.Runner.completed per_server;
    let rate_total =
      List.fold_left
        (fun acc (p : Desim.Timeseries.point) -> acc + p.Desim.Timeseries.count)
        0 s.Obs.Telemetry.request_rate
    in
    check_int "request-rate series sums to submitted"
      r.Experiments.Runner.submitted rate_total;
    check_bool "heavy hitters found" true
      (s.Obs.Telemetry.heavy_hitters <> []);
    List.iter
      (fun sv ->
        check_bool "utilization in [0,1]" true
          (sv.Obs.Telemetry.utilization >= 0.0
          && sv.Obs.Telemetry.utilization <= 1.0))
      s.Obs.Telemetry.servers;
    (* The JSON payload must parse back and expose the same totals. *)
    let json = Obs.Telemetry.snapshot_to_json s in
    (match Obs.Json.of_string (Obs.Json.to_string json) with
    | Error e -> Alcotest.failf "telemetry JSON invalid: %s" e
    | Ok j ->
      Alcotest.(check (option int))
        "JSON total_requests"
        (Some s.Obs.Telemetry.total_requests)
        Obs.Json.(to_int (member "total_requests" j)));
    ignore (Format.asprintf "%a" Obs.Telemetry.pp_snapshot s)

(* Ctx.isolated gives every run a fresh registry derived from the
   attached one's config: two runs off the SAME context must produce
   equal snapshots (no cross-run accumulation in a shared registry). *)
let test_runner_telemetry_isolated_per_run () =
  let obs = Obs.Ctx.create ~telemetry:(Obs.Telemetry.create ()) () in
  let a = run_with_obs obs in
  let b = run_with_obs obs in
  check_bool "telemetry present" true (a.Experiments.Runner.telemetry <> None);
  check_bool "equal snapshots across runs off one context" true
    (a.Experiments.Runner.telemetry = b.Experiments.Runner.telemetry)

let suite =
  [
    Alcotest.test_case "sketch exact under capacity" `Quick
      test_sketch_exact_under_capacity;
    Alcotest.test_case "sketch eviction overestimate" `Quick
      test_sketch_eviction_overestimate;
    Alcotest.test_case "server summaries" `Quick test_server_summaries;
    Alcotest.test_case "runner telemetry snapshot" `Quick
      test_runner_telemetry_snapshot;
    Alcotest.test_case "telemetry isolated per run" `Quick
      test_runner_telemetry_isolated_per_run;
  ]
