(* Figures registry and report rendering. *)

open Experiments

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_registry_complete () =
  List.iter
    (fun id ->
      check_bool (id ^ " registered") true (Figures.by_id id <> None))
    [
      "fig6"; "fig7"; "fig8"; "fig9"; "fig10"; "fig11";
      "domain-failure-collateral"; "scale";
    ];
  check_bool "unknown" true (Figures.by_id "fig99" = None);
  check_int "sixteen experiments" 16 (List.length Figures.all_ids)

let test_fig6_quick_structure () =
  let f = Figures.fig6 ~quick:true () in
  Alcotest.(check string) "id" "fig6" f.Figures.id;
  check_int "four policies" 4 (List.length f.Figures.results);
  let names = List.map (fun r -> r.Runner.policy_name) f.Figures.results in
  Alcotest.(check (list string)) "order"
    [ "simple-random"; "round-robin"; "prescient"; "anu" ]
    names;
  List.iter
    (fun r -> check_int "complete" r.Runner.submitted r.Runner.completed)
    f.Figures.results

let test_fig7_closeup () =
  let f = Figures.fig7 ~quick:true () in
  check_int "two policies" 2 (List.length f.Figures.results)

let test_fig10_over_tuning_contrast () =
  let f = Figures.fig10 ~quick:true () in
  match f.Figures.results with
  | [ none; all_three ] ->
    Alcotest.(check string) "panel a" "anu-no-heuristics"
      none.Runner.policy_name;
    Alcotest.(check string) "panel b" "anu-all-three"
      all_three.Runner.policy_name;
    (* The defining contrast: without heuristics the system keeps
       moving file sets. *)
    check_bool "no-heuristics moves more" true
      (List.length none.Runner.moves > List.length all_three.Runner.moves)
  | _ -> Alcotest.fail "expected two panels"

let test_fig11_three_panels () =
  let f = Figures.fig11 ~quick:true () in
  check_int "three" 3 (List.length f.Figures.results)

let test_failure_recovery_experiment () =
  let f = Figures.failure_recovery ~quick:true () in
  match f.Figures.results with
  | [ r ] ->
    check_int "completes" r.Runner.submitted r.Runner.completed;
    check_bool "has adoption moves" true
      (List.exists (fun m -> m.Sharedfs.Cluster.src = None) r.Runner.moves)
  | _ -> Alcotest.fail "expected one result"

let test_report_rendering () =
  let f = Figures.fig7 ~quick:true () in
  let text = Format.asprintf "%a" (Report.pp_figure ~max_minutes:10.0) f in
  check_bool "mentions policy" true
    (contains ~affix:"prescient" text);
  let summary = Format.asprintf "%a" Report.pp_summary f in
  check_bool "summary non-empty" true (String.length summary > 50)

let test_csv_output () =
  let f = Figures.fig7 ~quick:true () in
  let csv = Report.figure_to_csv f in
  let lines = String.split_on_char '\n' (String.trim csv) in
  (match lines with
  | header :: rows ->
    Alcotest.(check string) "header"
      "figure,policy,minute,server,mean_ms,max_ms,count" header;
    check_bool "has rows" true (List.length rows > 10);
    List.iter
      (fun row ->
        check_int "seven columns" 7
          (List.length (String.split_on_char ',' row)))
      rows
  | [] -> Alcotest.fail "empty csv")

let test_summary_line_format () =
  let f = Figures.fig7 ~quick:true () in
  List.iter
    (fun r ->
      let line = Report.summary_line r in
      check_bool "mentions ms" true (contains ~affix:"ms" line))
    f.Figures.results

let suite =
  [
    Alcotest.test_case "registry" `Quick test_registry_complete;
    Alcotest.test_case "fig6 structure" `Slow test_fig6_quick_structure;
    Alcotest.test_case "fig7 closeup" `Slow test_fig7_closeup;
    Alcotest.test_case "fig10 contrast" `Slow test_fig10_over_tuning_contrast;
    Alcotest.test_case "fig11 panels" `Slow test_fig11_three_panels;
    Alcotest.test_case "failure-recovery" `Slow test_failure_recovery_experiment;
    Alcotest.test_case "report rendering" `Slow test_report_rendering;
    Alcotest.test_case "csv output" `Slow test_csv_output;
    Alcotest.test_case "summary line" `Slow test_summary_line_format;
  ]
