(* The streaming workload engine: streamed == materialized for every
   generator at equal seeds, cursor independence, sorted uniform
   arrivals, the file-set interner, and the O(streams + inflight) heap
   bound of the streaming driver. *)

open Workload
module Interner = Sharedfs.File_set.Interner

let check_int = Alcotest.(check int)

(* Fail-fast structural comparison between a stream and a materialized
   trace: same length and duration, record-for-record equal times,
   requests and demands, and every item's dense [fs] id naming the
   request's file set through the stream's own id order. *)
let expect_stream_equals_trace what (stream : Stream.t) trace =
  let names = Array.of_list (Stream.file_sets stream) in
  let records = Trace.records trace in
  check_int (what ^ ": total") (Array.length records) (Stream.total stream);
  Alcotest.(check (float 0.0))
    (what ^ ": duration") (Trace.duration trace)
    (Stream.duration stream);
  let cursor = Stream.start stream in
  Array.iteri
    (fun i (r : Trace.record) ->
      match cursor () with
      | None ->
        Alcotest.failf "%s: stream ended at record %d of %d" what i
          (Array.length records)
      | Some (it : Stream.item) ->
        if
          not
            (it.time = r.time && it.demand = r.demand
           && it.request = r.request
            && names.(it.fs) = r.request.Sharedfs.Request.file_set)
        then Alcotest.failf "%s: record %d differs" what i)
    records;
  match cursor () with
  | None -> ()
  | Some _ -> Alcotest.failf "%s: stream yields past its total" what

(* Small configs so the qcheck property stays fast; each takes the
   drawn seed so streamed-vs-materialized is checked at equal seeds. *)
let small_synthetic seed =
  { Synthetic.default_config with file_sets = 40; requests = 600; seed }

let small_shifting seed =
  {
    Shifting.default_config with
    file_sets = 24;
    requests = 700;
    phases = 4;
    seed;
  }

let small_dfs seed = { Dfs_like.default_config with requests = 800; seed }

let small_sessions seed =
  {
    Sessions.default_config with
    clients = 12;
    file_sets = 16;
    sessions = 80;
    seed;
  }

let with_temp_trace trace f =
  let path = Filename.temp_file "shdisk-stream" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_io.save trace ~path;
      f path)

let check_all_generators seed =
  expect_stream_equals_trace "synthetic"
    (Synthetic.stream (small_synthetic seed))
    (Synthetic.generate (small_synthetic seed));
  expect_stream_equals_trace "shifting"
    (Shifting.stream (small_shifting seed))
    (Shifting.generate (small_shifting seed));
  expect_stream_equals_trace "dfs_like"
    (Dfs_like.stream (small_dfs seed))
    (Dfs_like.generate (small_dfs seed));
  expect_stream_equals_trace "sessions"
    (Sessions.stream (small_sessions seed))
    (Sessions.generate (small_sessions seed));
  (* the fifth generator: trace replay from disk *)
  with_temp_trace
    (Dfs_like.generate (small_dfs seed))
    (fun path ->
      expect_stream_equals_trace "trace_io"
        (Trace_io.stream ~path)
        (Trace_io.load ~path))

let test_generators_once () = check_all_generators 11

let prop_streamed_equals_materialized =
  QCheck.Test.make ~count:10 ~name:"streamed == materialized at equal seeds"
    (QCheck.make QCheck.Gen.(int_bound 100_000))
    (fun seed ->
      check_all_generators seed;
      true)

let test_trace_adapters () =
  let trace = Synthetic.generate (small_synthetic 3) in
  expect_stream_equals_trace "of_trace" (Stream.of_trace trace) trace;
  let stream = Sessions.stream (small_sessions 9) in
  expect_stream_equals_trace "to_trace" stream (Stream.to_trace stream)

(* Cursors must be independent: draining one before touching the other
   cannot perturb either sequence (the driver and the prescient oracle
   each hold their own). *)
let test_cursor_independence () =
  let drain cursor =
    let rec go acc =
      match cursor () with None -> List.rev acc | Some it -> go (it :: acc)
    in
    go []
  in
  let stream = Shifting.stream (small_shifting 7) in
  let a = Stream.start stream in
  let b = Stream.start stream in
  let xs = drain a in
  let ys = drain b in
  check_int "cursor lengths" (List.length xs) (List.length ys);
  if not (List.for_all2 (fun (x : Stream.item) y -> x = y) xs ys) then
    Alcotest.fail "independent cursors disagree"

let test_sorted_uniforms () =
  let rng = Desim.Rng.create 17 in
  let next = Stream.sorted_uniforms rng ~n:500 ~lo:2.0 ~hi:10.0 in
  let prev = ref 2.0 in
  for i = 1 to 500 do
    let x = next () in
    if x < !prev || x > 10.0 then
      Alcotest.failf "draw %d out of order or range: %g (prev %g)" i x !prev;
    prev := x
  done;
  match next () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument past n draws"

let test_interner_basics () =
  let i = Interner.create () in
  check_int "first id" 0 (Interner.intern i "a");
  check_int "second id" 1 (Interner.intern i "b");
  check_int "re-intern is stable" 0 (Interner.intern i "a");
  check_int "size" 2 (Interner.size i);
  Alcotest.(check string) "name" "b" (Interner.name i 1);
  Alcotest.(check (option int)) "find" (Some 1) (Interner.find i "b");
  Alcotest.(check (option int)) "find missing" None (Interner.find i "zz");
  Alcotest.(check (list string)) "names in id order" [ "a"; "b" ]
    (Interner.names i);
  (match Interner.intern i "" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty name must be rejected");
  let j = Interner.of_names [ "x"; "y"; "z" ] in
  check_int "of_names size" 3 (Interner.size j);
  check_int "of_names keeps list positions" 2 (Interner.id j "z")

let prop_interner_roundtrip =
  QCheck.Test.make ~count:100 ~name:"interner round-trip & uniqueness"
    QCheck.(
      list_of_size
        Gen.(1 -- 30)
        (string_gen_of_size Gen.(1 -- 8) Gen.printable))
    (fun names ->
      let i = Interner.create () in
      let ids = List.map (Interner.intern i) names in
      List.for_all2
        (fun n id ->
          Interner.name i id = n
          && Interner.intern i n = id
          && Interner.id i n = id
          && Interner.find i n = Some id)
        names ids
      && Interner.size i = List.length (List.sort_uniq compare names)
      && List.for_all2
           (fun n1 id1 ->
             List.for_all2 (fun n2 id2 -> n1 = n2 = (id1 = id2)) names ids)
           names ids)

(* The tentpole's memory claim as a regression test: scale one
   workload 20x at constant offered load (mean demand divided by the
   same factor) and the event-heap high-water mark must stay flat —
   O(streams + inflight), not O(requests). *)
let test_driver_heap_bound () =
  let small =
    { Synthetic.default_config with file_sets = 60; requests = 2_000; seed = 5 }
  in
  let big =
    {
      small with
      requests = small.requests * 20;
      mean_demand = small.mean_demand /. 20.0;
    }
  in
  let run cfg =
    Experiments.Runner.run_stream Experiments.Scenario.default
      (Experiments.Scenario.Anu Placement.Anu.default_config)
      ~stream:(Synthetic.stream cfg) ()
  in
  let rs = run small in
  let rb = run big in
  check_int "small run completes" small.requests rs.completed;
  check_int "big run completes" big.requests rb.completed;
  if rb.sim_peak_pending >= (4 * rs.sim_peak_pending) + 64 then
    Alcotest.failf "heap grew with request count: %d -> %d at 20x requests"
      rs.sim_peak_pending rb.sim_peak_pending

(* The legacy trace driver is the streaming driver over [of_trace]:
   materializing a generator's stream and running it must reproduce
   the streamed run bit for bit, oracle included (Prescient forces the
   look-ahead path). *)
let test_run_matches_run_stream () =
  let stream = Synthetic.stream (small_synthetic 21) in
  let scenario = Experiments.Scenario.default in
  let spec = Experiments.Scenario.Prescient in
  let trace = Stream.to_trace stream in
  let a = Experiments.Runner.run scenario spec ~trace () in
  let b = Experiments.Runner.run_stream scenario spec ~stream () in
  check_int "completed" a.completed b.completed;
  check_int "submitted" a.submitted b.submitted;
  check_int "rounds" a.reconfig_rounds b.reconfig_rounds;
  check_int "moves" (List.length a.moves) (List.length b.moves);
  Alcotest.(check (float 0.0)) "mean" a.overall_mean b.overall_mean;
  Alcotest.(check (float 0.0)) "p95" a.overall_p95 b.overall_p95;
  Alcotest.(check (float 0.0)) "max" a.overall_max b.overall_max

(* Same identity with the span pipeline on: every span begin/end the
   two drivers emit (request lifecycle, rounds, moves) must serialize
   to byte-identical JSONL — span ids, parents and timestamps
   included.  Both drivers get the trace-derived file-set universe
   (materializing drops declared-but-unused names), so this isolates
   the driver identity itself. *)
let test_run_matches_run_stream_traced () =
  let trace = Synthetic.generate (small_synthetic 21) in
  let stream = Stream.of_trace trace in
  let scenario = Experiments.Scenario.default in
  let spec = Experiments.Scenario.Anu Placement.Anu.default_config in
  let trace_of run =
    let ring = Obs.Sink.Ring.create ~capacity:100_000 in
    let obs = Obs.Ctx.create ~sinks:[ Obs.Sink.Ring.sink ring ] () in
    let (_ : Experiments.Runner.result) = run obs in
    check_int "nothing evicted" 0 (Obs.Sink.Ring.dropped ring);
    String.concat "\n"
      (List.map Obs.Event.to_jsonl (Obs.Sink.Ring.contents ring))
  in
  let a =
    trace_of (fun obs -> Experiments.Runner.run scenario spec ~trace ~obs ())
  in
  let b =
    trace_of (fun obs ->
        Experiments.Runner.run_stream scenario spec ~stream ~obs ())
  in
  Alcotest.(check bool)
    "byte-identical traces with spans enabled" true (String.equal a b);
  Alcotest.(check bool) "trace is non-trivial" true (String.length a > 0)

let suite =
  [
    Alcotest.test_case "generators: streamed == materialized" `Quick
      test_generators_once;
    Alcotest.test_case "trace adapters round-trip" `Quick test_trace_adapters;
    Alcotest.test_case "cursors are independent" `Quick
      test_cursor_independence;
    Alcotest.test_case "sorted_uniforms" `Quick test_sorted_uniforms;
    Alcotest.test_case "interner basics" `Quick test_interner_basics;
    Alcotest.test_case "driver heap stays O(streams)" `Quick
      test_driver_heap_bound;
    Alcotest.test_case "run == run_stream" `Quick test_run_matches_run_stream;
    Alcotest.test_case "run == run_stream under tracing" `Quick
      test_run_matches_run_stream_traced;
    QCheck_alcotest.to_alcotest prop_streamed_equals_materialized;
    QCheck_alcotest.to_alcotest prop_interner_roundtrip;
  ]
