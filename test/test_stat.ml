(* Welford, Sample, Histogram, and the aggregate helpers. *)

open Desim

let check_int = Alcotest.(check int)
let check_float eps = Alcotest.(check (float eps))

let test_welford_against_naive () =
  let values = [ 3.0; 1.5; -2.0; 8.25; 0.0; 4.5 ] in
  let w = Welford.create () in
  List.iter (Welford.add w) values;
  let n = float_of_int (List.length values) in
  let mean = List.fold_left ( +. ) 0.0 values /. n in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 values /. n
  in
  check_float 1e-12 "mean" mean (Welford.mean w);
  check_float 1e-12 "variance" var (Welford.variance w);
  check_float 1e-12 "min" (-2.0) (Welford.min_value w);
  check_float 1e-12 "max" 8.25 (Welford.max_value w);
  check_int "count" 6 (Welford.count w)

let test_welford_empty () =
  let w = Welford.create () in
  check_float 0.0 "mean" 0.0 (Welford.mean w);
  check_float 0.0 "variance" 0.0 (Welford.variance w)

let test_welford_merge () =
  let all = Welford.create () in
  let a = Welford.create () and b = Welford.create () in
  List.iter
    (fun x ->
      Welford.add all x;
      Welford.add (if x < 3.0 then a else b) x)
    [ 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 ];
  let merged = Welford.merge a b in
  check_float 1e-12 "mean" (Welford.mean all) (Welford.mean merged);
  check_float 1e-12 "variance" (Welford.variance all) (Welford.variance merged);
  check_int "count" (Welford.count all) (Welford.count merged)

let test_welford_merge_with_empty () =
  let a = Welford.create () in
  Welford.add a 5.0;
  let empty = Welford.create () in
  let m = Welford.merge a empty in
  check_float 0.0 "mean" 5.0 (Welford.mean m);
  check_int "count" 1 (Welford.count m)

let test_welford_reset () =
  let w = Welford.create () in
  Welford.add w 10.0;
  Welford.reset w;
  check_int "count" 0 (Welford.count w);
  check_float 0.0 "mean" 0.0 (Welford.mean w)

let test_sample_percentiles () =
  let s = Stat.Sample.create () in
  for i = 1 to 100 do
    Stat.Sample.add s (float_of_int i)
  done;
  check_float 1e-9 "p0" 1.0 (Stat.Sample.percentile s 0.0);
  check_float 1e-9 "p100" 100.0 (Stat.Sample.percentile s 100.0);
  check_float 1e-9 "median" 50.5 (Stat.Sample.median s);
  check_float 1e-9 "p25" 25.75 (Stat.Sample.percentile s 25.0);
  check_float 1e-9 "p95" 95.05 (Stat.Sample.percentile s 95.0)

let test_sample_percentile_errors () =
  let s = Stat.Sample.create () in
  Alcotest.check_raises "empty"
    (Invalid_argument "Stat.Sample.percentile: empty sample") (fun () ->
      ignore (Stat.Sample.percentile s 50.0));
  Stat.Sample.add s 1.0;
  Alcotest.check_raises "out of range"
    (Invalid_argument "Stat.Sample.percentile: p out of [0, 100]") (fun () ->
      ignore (Stat.Sample.percentile s 101.0))

let test_sample_add_after_percentile () =
  (* Percentile sorts lazily; adding afterwards must still work. *)
  let s = Stat.Sample.create () in
  List.iter (Stat.Sample.add s) [ 3.0; 1.0; 2.0 ];
  ignore (Stat.Sample.median s);
  Stat.Sample.add s 0.5;
  check_float 1e-9 "median updated" 1.5 (Stat.Sample.median s);
  check_int "count" 4 (Stat.Sample.count s);
  check_float 1e-9 "total" 6.5 (Stat.Sample.total s)

let test_sample_values_sorted () =
  let s = Stat.Sample.create () in
  List.iter (Stat.Sample.add s) [ 3.0; 1.0; 2.0 ];
  Alcotest.(check (array (float 0.0)))
    "sorted" [| 1.0; 2.0; 3.0 |] (Stat.Sample.values s)

let test_sample_reset () =
  let s = Stat.Sample.create () in
  Stat.Sample.add s 1.0;
  Stat.Sample.reset s;
  check_int "count" 0 (Stat.Sample.count s)

let test_histogram () =
  let h = Stat.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  List.iter (Stat.Histogram.add h) [ -1.0; 0.0; 1.9; 2.0; 5.5; 9.99; 10.0; 42.0 ];
  check_int "count" 8 (Stat.Histogram.count h);
  check_int "underflow" 1 (Stat.Histogram.underflow h);
  check_int "overflow" 2 (Stat.Histogram.overflow h);
  Alcotest.(check (array int))
    "bins" [| 2; 1; 1; 0; 1 |] (Stat.Histogram.bin_counts h);
  Alcotest.(check (array (float 1e-9)))
    "edges" [| 0.0; 2.0; 4.0; 6.0; 8.0; 10.0 |] (Stat.Histogram.bin_edges h)

let test_histogram_validation () =
  Alcotest.check_raises "bins"
    (Invalid_argument "Stat.Histogram.create: bins must be > 0") (fun () ->
      ignore (Stat.Histogram.create ~lo:0.0 ~hi:1.0 ~bins:0));
  Alcotest.check_raises "range"
    (Invalid_argument "Stat.Histogram.create: lo must be < hi") (fun () ->
      ignore (Stat.Histogram.create ~lo:1.0 ~hi:1.0 ~bins:3))

let test_weighted_mean () =
  check_float 1e-12 "simple" 2.0
    (Stat.weighted_mean [ (1.0, 1.0); (3.0, 1.0) ]);
  check_float 1e-12 "weights matter" 1.5
    (Stat.weighted_mean [ (1.0, 3.0); (3.0, 1.0) ]);
  check_float 1e-12 "empty" 0.0 (Stat.weighted_mean []);
  check_float 1e-12 "zero weights" 0.0
    (Stat.weighted_mean [ (5.0, 0.0); (7.0, 0.0) ])

let test_median_of () =
  check_float 1e-12 "odd" 2.0 (Stat.median_of [ 3.0; 1.0; 2.0 ]);
  check_float 1e-12 "even" 2.5 (Stat.median_of [ 4.0; 1.0; 2.0; 3.0 ]);
  Alcotest.check_raises "empty"
    (Invalid_argument "Stat.median_of: empty list") (fun () ->
      ignore (Stat.median_of []))

let test_cv_and_imbalance () =
  check_float 1e-12 "cv of constant" 0.0
    (Stat.coefficient_of_variation [ 2.0; 2.0; 2.0 ]);
  check_float 1e-12 "imbalance of balanced" 1.0 (Stat.imbalance [ 2.0; 2.0 ]);
  check_float 1e-12 "imbalance skew" 1.5 (Stat.imbalance [ 1.0; 3.0; 2.0 ]);
  check_float 1e-12 "imbalance empty" 0.0 (Stat.imbalance [])

(* The log-binned estimator against the exact retained-sample answer:
   within the bin ratio (2%) on a heavy-ish latency-shaped draw, with
   min and max exact. *)
let test_quantile_vs_sample () =
  let q = Stat.Quantile.create () in
  let s = Stat.Sample.create () in
  let rng = Rng.create 3 in
  for _ = 1 to 20_000 do
    let x = Rng.exponential rng ~mean:0.05 in
    Stat.Quantile.add q x;
    Stat.Sample.add s x
  done;
  check_int "count" 20_000 (Stat.Quantile.count q);
  check_float 1e-12 "min exact" (Stat.Sample.percentile s 0.0)
    (Stat.Quantile.min_value q);
  check_float 1e-12 "max exact" (Stat.Sample.percentile s 100.0)
    (Stat.Quantile.max_value q);
  List.iter
    (fun p ->
      let exact = Stat.Sample.percentile s p in
      let approx = Stat.Quantile.percentile q p in
      if Float.abs (approx -. exact) > 0.03 *. exact then
        Alcotest.failf "p%g: estimate %g vs exact %g" p approx exact)
    [ 50.0; 90.0; 95.0; 99.0 ]

let test_quantile_edges () =
  let q = Stat.Quantile.create () in
  (match Stat.Quantile.percentile q 50.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty estimator must raise");
  Stat.Quantile.add q 0.25;
  check_float 1e-12 "single value p50" 0.25 (Stat.Quantile.percentile q 50.0);
  check_float 1e-12 "single value p99" 0.25 (Stat.Quantile.percentile q 99.0);
  (* below the binned range: clamped to the exact min, not the floor *)
  Stat.Quantile.add q 1e-9;
  check_float 1e-12 "underflow clamps to min" 1e-9
    (Stat.Quantile.percentile q 10.0);
  match Stat.Quantile.percentile q 101.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "p out of range must raise"

let prop_quantile_in_range =
  QCheck.Test.make ~count:200 ~name:"quantile estimate stays in [min, max]"
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 60) (float_bound_exclusive 1000.0))
        (float_bound_inclusive 100.0))
    (fun (values, p) ->
      let q = Stat.Quantile.create () in
      List.iter (fun x -> Stat.Quantile.add q (x +. 1e-6)) values;
      let est = Stat.Quantile.percentile q p in
      Stat.Quantile.min_value q <= est && est <= Stat.Quantile.max_value q)

let prop_percentile_monotone =
  QCheck.Test.make ~count:200 ~name:"percentile is monotone in p"
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 50) (float_bound_exclusive 100.0))
        (pair (float_bound_inclusive 100.0) (float_bound_inclusive 100.0)))
    (fun (values, (p1, p2)) ->
      let s = Stat.Sample.create () in
      List.iter (Stat.Sample.add s) values;
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stat.Sample.percentile s lo <= Stat.Sample.percentile s hi +. 1e-9)

let prop_welford_merge_commutes =
  QCheck.Test.make ~count:200 ~name:"welford merge is order independent"
    QCheck.(
      pair
        (list (float_bound_exclusive 100.0))
        (list (float_bound_exclusive 100.0)))
    (fun (xs, ys) ->
      let build vs =
        let w = Welford.create () in
        List.iter (Welford.add w) vs;
        w
      in
      let ab = Welford.merge (build xs) (build ys) in
      let ba = Welford.merge (build ys) (build xs) in
      Float.abs (Welford.mean ab -. Welford.mean ba) < 1e-9
      && Float.abs (Welford.variance ab -. Welford.variance ba) < 1e-9)

let suite =
  [
    Alcotest.test_case "welford vs naive" `Quick test_welford_against_naive;
    Alcotest.test_case "welford empty" `Quick test_welford_empty;
    Alcotest.test_case "welford merge" `Quick test_welford_merge;
    Alcotest.test_case "welford merge empty" `Quick test_welford_merge_with_empty;
    Alcotest.test_case "welford reset" `Quick test_welford_reset;
    Alcotest.test_case "sample percentiles" `Quick test_sample_percentiles;
    Alcotest.test_case "percentile errors" `Quick test_sample_percentile_errors;
    Alcotest.test_case "add after percentile" `Quick
      test_sample_add_after_percentile;
    Alcotest.test_case "values sorted" `Quick test_sample_values_sorted;
    Alcotest.test_case "sample reset" `Quick test_sample_reset;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "histogram validation" `Quick test_histogram_validation;
    Alcotest.test_case "quantile vs exact sample" `Quick
      test_quantile_vs_sample;
    Alcotest.test_case "quantile edges" `Quick test_quantile_edges;
    Alcotest.test_case "weighted mean" `Quick test_weighted_mean;
    Alcotest.test_case "median_of" `Quick test_median_of;
    Alcotest.test_case "cv and imbalance" `Quick test_cv_and_imbalance;
    QCheck_alcotest.to_alcotest prop_quantile_in_range;
    QCheck_alcotest.to_alcotest prop_percentile_monotone;
    QCheck_alcotest.to_alcotest prop_welford_merge_commutes;
  ]
