(* Event_heap: ordering, FIFO tie-breaking, structural invariant. *)

open Desim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_empty () =
  let h = Event_heap.create () in
  check_bool "empty" true (Event_heap.is_empty h);
  check_int "size" 0 (Event_heap.size h);
  Alcotest.(check (option (float 0.0))) "peek_time" None (Event_heap.peek_time h);
  check_bool "pop_opt" true (Event_heap.pop_opt h = None);
  Alcotest.check_raises "pop raises" Not_found (fun () ->
      ignore (Event_heap.pop h))

let test_single () =
  let h = Event_heap.create () in
  let (_ : int) = Event_heap.add h ~time:3.5 "a" in
  check_int "size" 1 (Event_heap.size h);
  Alcotest.(check (option (float 0.0)))
    "peek_time" (Some 3.5) (Event_heap.peek_time h);
  let t, _, v = Event_heap.pop h in
  Alcotest.(check (float 0.0)) "time" 3.5 t;
  Alcotest.(check string) "value" "a" v;
  check_bool "empty after pop" true (Event_heap.is_empty h)

let test_ordering () =
  let h = Event_heap.create () in
  List.iter
    (fun t -> ignore (Event_heap.add h ~time:t t))
    [ 5.0; 1.0; 3.0; 2.0; 4.0; 0.5 ]
  ;
  let popped = ref [] in
  while not (Event_heap.is_empty h) do
    let t, _, _ = Event_heap.pop h in
    popped := t :: !popped
  done;
  Alcotest.(check (list (float 0.0)))
    "ascending" [ 0.5; 1.0; 2.0; 3.0; 4.0; 5.0 ] (List.rev !popped)

let test_fifo_ties () =
  let h = Event_heap.create () in
  List.iter (fun v -> ignore (Event_heap.add h ~time:1.0 v)) [ "a"; "b"; "c" ];
  let order = List.init 3 (fun _ -> let _, _, v = Event_heap.pop h in v) in
  Alcotest.(check (list string)) "insertion order" [ "a"; "b"; "c" ] order

let test_peek_matches_pop () =
  let h = Event_heap.create () in
  List.iter (fun t -> ignore (Event_heap.add h ~time:t t)) [ 9.0; 2.0; 7.0 ];
  (match Event_heap.peek h with
  | Some (t, _, v) ->
    Alcotest.(check (float 0.0)) "peek time" 2.0 t;
    Alcotest.(check (float 0.0)) "peek value" 2.0 v
  | None -> Alcotest.fail "expected Some");
  check_int "peek does not remove" 3 (Event_heap.size h)

let test_nan_rejected () =
  let h = Event_heap.create () in
  Alcotest.check_raises "NaN" (Invalid_argument "Event_heap.add: NaN time")
    (fun () -> ignore (Event_heap.add h ~time:Float.nan ()))

let test_clear () =
  let h = Event_heap.create () in
  for i = 1 to 10 do
    ignore (Event_heap.add h ~time:(float_of_int i) i)
  done;
  Event_heap.clear h;
  check_bool "cleared" true (Event_heap.is_empty h)

let test_clear_keeps_sequence_monotonic () =
  (* Documented policy: clear does not reset the tie-break counter, so
     sequence numbers stay unique across the heap's lifetime. *)
  let h = Event_heap.create () in
  let s0 = Event_heap.add h ~time:1.0 "a" in
  let s1 = Event_heap.add h ~time:2.0 "b" in
  Event_heap.clear h;
  let s2 = Event_heap.add h ~time:0.5 "c" in
  check_bool "monotonic across clear" true (s0 < s1 && s1 < s2)

let test_compact_removes_only_filtered () =
  let h = Event_heap.create () in
  for i = 0 to 99 do
    ignore (Event_heap.add h ~time:(float_of_int (i mod 10)) i)
  done;
  Event_heap.compact h ~keep:(fun v -> v mod 2 = 0);
  check_int "half kept" 50 (Event_heap.size h);
  check_bool "invariant" true (Event_heap.check_invariant h);
  let drained = ref [] in
  while not (Event_heap.is_empty h) do
    let _, _, v = Event_heap.pop h in
    drained := v :: !drained
  done;
  let drained = List.rev !drained in
  check_bool "only survivors" true (List.for_all (fun v -> v mod 2 = 0) drained)

let prop_compact_preserves_pop_order =
  (* Popping everything after compact ~keep equals filtering the popped
     sequence of an identical uncompacted heap: (time, seq) keys — and
     therefore FIFO tie-breaking — survive compaction. *)
  QCheck.Test.make ~count:200 ~name:"compact preserves (time, seq) pop order"
    QCheck.(list (float_bound_exclusive 10.0))
    (fun times ->
      let fill () =
        let h = Event_heap.create () in
        List.iteri (fun i t -> ignore (Event_heap.add h ~time:t (i, t))) times;
        h
      in
      let drain h =
        let acc = ref [] in
        while not (Event_heap.is_empty h) do
          let t, s, v = Event_heap.pop h in
          acc := (t, s, v) :: !acc
        done;
        List.rev !acc
      in
      let keep (i, _) = i mod 3 <> 0 in
      let compacted = fill () in
      Event_heap.compact compacted ~keep;
      let reference = fill () in
      drain compacted
      = List.filter (fun (_, _, v) -> keep v) (drain reference)
      && Event_heap.check_invariant compacted)

(* add_sorted edges: the empty batch is a no-op, a singleton batch is
   exactly one add, and the preconditions (sortedness, NaN, count
   bounds) are enforced. *)
let test_add_sorted_edges () =
  let h = Event_heap.create () in
  Event_heap.add_sorted h ~times:[||] ~count:0 [||];
  check_int "empty batch is a no-op" 0 (Event_heap.size h);
  Event_heap.add_sorted h ~times:[| 4.0 |] ~count:1 [| "only" |];
  check_int "singleton" 1 (Event_heap.size h);
  (match Event_heap.pop h with
  | t, _, v ->
    Alcotest.(check (float 0.0)) "singleton time" 4.0 t;
    Alcotest.(check string) "singleton value" "only" v);
  Alcotest.check_raises "unsorted rejected"
    (Invalid_argument "Event_heap.add_sorted: times not sorted") (fun () ->
      Event_heap.add_sorted h ~times:[| 2.0; 1.0 |] ~count:2 [| "a"; "b" |]);
  Alcotest.check_raises "NaN rejected"
    (Invalid_argument "Event_heap.add_sorted: NaN time") (fun () ->
      Event_heap.add_sorted h ~times:[| Float.nan |] ~count:1 [| "a" |]);
  Alcotest.check_raises "count beyond the arrays rejected"
    (Invalid_argument "Event_heap.add_sorted: bad count") (fun () ->
      Event_heap.add_sorted h ~times:[| 1.0 |] ~count:2 [| "a" |])

(* Drain a heap to the full (time, seq, value) triple list — sequence
   numbers included, so "as if by successive add calls" is checked
   byte-for-byte, not just up to pop order. *)
let drain_triples h =
  let acc = ref [] in
  while not (Event_heap.is_empty h) do
    acc := Event_heap.pop h :: !acc
  done;
  List.rev !acc

let sorted_batch_gen =
  (* A heap pre-populated with random singles, then a monotone batch:
     add_sorted must interleave with existing contents exactly like
     the one-by-one path. *)
  QCheck.(
    pair
      (list (float_bound_exclusive 100.0))
      (list (float_bound_exclusive 100.0)))

let prop_add_sorted_equals_adds =
  QCheck.Test.make ~count:300
    ~name:"add_sorted == successive adds (seqs, pop order, invariant)"
    sorted_batch_gen
    (fun (singles, batch) ->
      let batch = List.sort Float.compare batch in
      let times = Array.of_list batch in
      let count = Array.length times in
      let values = Array.init count (fun i -> i + 1_000_000) in
      let fill_singles h =
        List.iteri (fun i t -> ignore (Event_heap.add h ~time:t i)) singles
      in
      let batched = Event_heap.create () in
      fill_singles batched;
      Event_heap.add_sorted batched ~times ~count values;
      let reference = Event_heap.create () in
      fill_singles reference;
      Array.iteri
        (fun i t -> ignore (Event_heap.add reference ~time:t values.(i)))
        times;
      Event_heap.check_invariant batched
      && drain_triples batched = drain_triples reference)

let prop_add_sorted_then_compact =
  (* Compaction after a batch insert keeps the batch's (time, seq)
     keys: survivors pop exactly like the filtered reference. *)
  QCheck.Test.make ~count:200 ~name:"add_sorted survives compaction"
    QCheck.(list (float_bound_exclusive 50.0))
    (fun batch ->
      let batch = List.sort Float.compare batch in
      let times = Array.of_list batch in
      let count = Array.length times in
      let values = Array.init count Fun.id in
      let fill () =
        let h = Event_heap.create () in
        Event_heap.add_sorted h ~times ~count values;
        h
      in
      let keep v = v mod 3 <> 1 in
      let compacted = fill () in
      Event_heap.compact compacted ~keep;
      let reference = fill () in
      Event_heap.check_invariant compacted
      && drain_triples compacted
         = List.filter (fun (_, _, v) -> keep v) (drain_triples reference))

let test_grow_beyond_initial_capacity () =
  let h = Event_heap.create () in
  for i = 1000 downto 1 do
    ignore (Event_heap.add h ~time:(float_of_int i) i)
  done;
  check_int "size" 1000 (Event_heap.size h);
  check_bool "invariant" true (Event_heap.check_invariant h);
  let first = ref max_int in
  let ok = ref true in
  let prev = ref neg_infinity in
  while not (Event_heap.is_empty h) do
    let t, _, v = Event_heap.pop h in
    if t < !prev then ok := false;
    prev := t;
    if v < !first then first := v
  done;
  check_bool "sorted drain" true !ok;
  check_int "min seen" 1 !first

let prop_heap_sorted =
  QCheck.Test.make ~count:300 ~name:"random adds pop in sorted order"
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun times ->
      let h = Event_heap.create () in
      List.iter (fun t -> ignore (Event_heap.add h ~time:t t)) times;
      let ok = ref (Event_heap.check_invariant h) in
      let prev = ref neg_infinity in
      while not (Event_heap.is_empty h) do
        let t, _, _ = Event_heap.pop h in
        if t < !prev then ok := false;
        prev := t
      done;
      !ok)

let prop_interleaved =
  QCheck.Test.make ~count:200 ~name:"interleaved add/pop preserves invariant"
    QCheck.(list (pair bool (float_bound_exclusive 100.0)))
    (fun ops ->
      let h = Event_heap.create () in
      List.iter
        (fun (pop, t) ->
          if pop then ignore (Event_heap.pop_opt h)
          else ignore (Event_heap.add h ~time:t ()))
        ops;
      Event_heap.check_invariant h)

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "single element" `Quick test_single;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "FIFO among equal times" `Quick test_fifo_ties;
    Alcotest.test_case "peek matches pop" `Quick test_peek_matches_pop;
    Alcotest.test_case "NaN rejected" `Quick test_nan_rejected;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "clear keeps sequence monotonic" `Quick
      test_clear_keeps_sequence_monotonic;
    Alcotest.test_case "compact removes only filtered" `Quick
      test_compact_removes_only_filtered;
    Alcotest.test_case "growth" `Quick test_grow_beyond_initial_capacity;
    Alcotest.test_case "add_sorted edges" `Quick test_add_sorted_edges;
    QCheck_alcotest.to_alcotest prop_add_sorted_equals_adds;
    QCheck_alcotest.to_alcotest prop_add_sorted_then_compact;
    QCheck_alcotest.to_alcotest prop_heap_sorted;
    QCheck_alcotest.to_alcotest prop_interleaved;
    QCheck_alcotest.to_alcotest prop_compact_preserves_pop_order;
  ]
