(* Session workload, namespace resolution, and the cluster's live
   lock service (conflicts, deferred grants, lease reclaim). *)

open Sharedfs
module Id = Server_id

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Sessions generator --- *)

let small_sessions =
  {
    Workload.Sessions.default_config with
    Workload.Sessions.sessions = 200;
    clients = 10;
    file_sets = 8;
  }

let test_sessions_structure () =
  let trace = Workload.Sessions.generate small_sessions in
  check_int "one open per session" 200
    (Workload.Sessions.session_count trace);
  let counts =
    Array.fold_left
      (fun (acq, rel, close) r ->
        match r.Workload.Trace.request.Request.op with
        | Request.Lock_acquire -> (acq + 1, rel, close)
        | Request.Lock_release -> (acq, rel + 1, close)
        | Request.Close_file -> (acq, rel, close + 1)
        | _ -> (acq, rel, close))
      (0, 0, 0)
      (Workload.Trace.records trace)
  in
  let acq, rel, close = counts in
  check_int "one acquire per session" 200 acq;
  check_int "one release per session" 200 rel;
  check_int "one close per session" 200 close

let test_sessions_deterministic () =
  let a = Workload.Sessions.generate small_sessions in
  let b = Workload.Sessions.generate small_sessions in
  check_bool "identical" true
    (Workload.Trace.counts_by_file_set a = Workload.Trace.counts_by_file_set b)

let test_sessions_validation () =
  Alcotest.check_raises "sessions"
    (Invalid_argument "Sessions.generate: sessions must be positive")
    (fun () ->
      ignore
        (Workload.Sessions.generate
           { small_sessions with Workload.Sessions.sessions = 0 }))

(* --- Namespace --- *)

let test_namespace_longest_prefix () =
  let ns =
    Namespace.create
      [ ("/", "root-fs"); ("/home", "home-fs"); ("/home/alice", "alice-fs") ]
  in
  Alcotest.(check (option string)) "deep" (Some "alice-fs")
    (Namespace.resolve ns "/home/alice/doc.txt");
  Alcotest.(check (option string)) "mid" (Some "home-fs")
    (Namespace.resolve ns "/home/bob");
  Alcotest.(check (option string)) "root" (Some "root-fs")
    (Namespace.resolve ns "/var/log");
  Alcotest.(check (option string)) "exact mount" (Some "alice-fs")
    (Namespace.resolve ns "/home/alice")

let test_namespace_component_boundaries () =
  let ns = Namespace.create [ ("/home", "home-fs") ] in
  Alcotest.(check (option string)) "no false prefix" None
    (Namespace.resolve ns "/homework")

let test_namespace_mount_unmount () =
  let ns = Namespace.create [ ("/", "root-fs") ] in
  let ns = Namespace.mount ns ~path:"/scratch" ~file_set:"scratch-fs" in
  Alcotest.(check (option string)) "mounted" (Some "scratch-fs")
    (Namespace.resolve ns "/scratch/tmp");
  let ns = Namespace.unmount ns ~path:"/scratch" in
  Alcotest.(check (option string)) "unmounted falls back" (Some "root-fs")
    (Namespace.resolve ns "/scratch/tmp");
  Alcotest.check_raises "unknown unmount"
    (Invalid_argument "Namespace.unmount: not mounted: /nope") (fun () ->
      ignore (Namespace.unmount ns ~path:"/nope"))

let test_namespace_validation () =
  Alcotest.check_raises "relative"
    (Invalid_argument "Namespace: path must be absolute: home") (fun () ->
      ignore (Namespace.create [ ("home", "fs") ]));
  Alcotest.check_raises "trailing slash"
    (Invalid_argument "Namespace: no trailing slash: /home/") (fun () ->
      ignore (Namespace.create [ ("/home/", "fs") ]));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Namespace.create: duplicate mount path") (fun () ->
      ignore (Namespace.create [ ("/a", "x"); ("/a", "y") ]));
  let ns = Namespace.create [ ("/a", "x") ] in
  check_bool "covered" true (Namespace.covered ns ~file_set:"x" = [ "/a" ]);
  check_int "mounts" 1 (List.length (Namespace.mounts ns))

(* --- Live lock service in the cluster --- *)

let lock_req ?(exclusive = true) ~client file_set =
  (* path_hash land 3 = 0 selects Exclusive in Request.lock_mode. *)
  let path_hash = if exclusive then 4 else 1 in
  { Request.op = Request.Lock_acquire; file_set; path_hash; client }

let release_req ?(exclusive = true) ~client file_set =
  let path_hash = if exclusive then 4 else 1 in
  { Request.op = Request.Lock_release; file_set; path_hash; client }

let make_cluster () =
  let sim = Desim.Sim.create () in
  let disk = Shared_disk.create () in
  let catalog = File_set.Catalog.create [ "a"; "b" ] in
  let cluster =
    Cluster.create sim ~disk ~catalog ~lease_duration:30.0
      ~series_interval:10.0
      ~servers:[ (Id.of_int 0, 1.0) ]
      ()
  in
  Cluster.assign_initial cluster [ ("a", Id.of_int 0); ("b", Id.of_int 0) ];
  (sim, cluster)

let test_conflicting_acquire_waits_for_release () =
  let sim, cluster = make_cluster () in
  let grant_times = ref [] in
  let submit_at time req =
    let (_ : Desim.Sim.handle) =
      Desim.Sim.schedule_at sim ~time (fun () ->
          Cluster.submit cluster ~base_demand:0.1 req
            ~on_complete:(fun ~latency:_ ->
              grant_times := (req.Request.client, Desim.Sim.now sim) :: !grant_times))
    in
    ()
  in
  submit_at 0.0 (lock_req ~client:1 "a");
  submit_at 1.0 (lock_req ~client:2 "a");
  submit_at 5.0 (release_req ~client:1 "a");
  Desim.Sim.run sim;
  let stats = Cluster.lock_stats cluster in
  check_int "one immediate grant" 1 stats.Cluster.granted_immediately;
  check_int "one waited" 1 stats.Cluster.waited;
  (* Client 2's grant lands when client 1 releases (just after t=5),
     far later than its own service time. *)
  let t2 = List.assoc 2 !grant_times in
  check_bool "waited for the release" true (t2 >= 5.0);
  check_bool "well before lease expiry" true (t2 < 10.0)

let test_shared_locks_do_not_conflict () =
  let sim, cluster = make_cluster () in
  let completed = ref 0 in
  List.iter
    (fun client ->
      Cluster.submit cluster ~base_demand:0.1
        (lock_req ~exclusive:false ~client "a")
        ~on_complete:(fun ~latency:_ -> incr completed))
    [ 1; 2; 3 ];
  Desim.Sim.run sim;
  check_int "all granted" 3 !completed;
  let stats = Cluster.lock_stats cluster in
  check_int "no waits" 0 stats.Cluster.waited

let test_lease_reclaims_abandoned_lock () =
  let sim, cluster = make_cluster () in
  let t2_granted = ref 0.0 in
  (* Client 1 takes the lock and never releases (crashed client). *)
  Cluster.submit cluster ~base_demand:0.1 (lock_req ~client:1 "a")
    ~on_complete:(fun ~latency:_ -> ());
  let (_ : Desim.Sim.handle) =
    Desim.Sim.schedule_at sim ~time:2.0 (fun () ->
        Cluster.submit cluster ~base_demand:0.1 (lock_req ~client:2 "a")
          ~on_complete:(fun ~latency:_ -> t2_granted := Desim.Sim.now sim))
  in
  Desim.Sim.run sim;
  let stats = Cluster.lock_stats cluster in
  (* Client 1's abandoned hold expires at ~30 s; client 2, also never
     releasing, expires one lease later. *)
  check_int "both abandoned leases fired" 2 stats.Cluster.leases_expired;
  (* The 30-second lease started at the grant (t ~ 0.1). *)
  check_bool "granted at lease expiry" true
    (!t2_granted >= 30.0 && !t2_granted < 32.0)

let test_release_of_queued_acquire_completes_it () =
  let sim, cluster = make_cluster () in
  let completions = ref 0 in
  Cluster.submit cluster ~base_demand:0.1 (lock_req ~client:1 "a")
    ~on_complete:(fun ~latency:_ -> incr completions);
  let (_ : Desim.Sim.handle) =
    Desim.Sim.schedule_at sim ~time:1.0 (fun () ->
        Cluster.submit cluster ~base_demand:0.1 (lock_req ~client:2 "a")
          ~on_complete:(fun ~latency:_ -> incr completions))
  in
  (* Client 2 gives up before ever being granted. *)
  let (_ : Desim.Sim.handle) =
    Desim.Sim.schedule_at sim ~time:3.0 (fun () ->
        Cluster.submit cluster ~base_demand:0.1 (release_req ~client:2 "a")
          ~on_complete:(fun ~latency:_ -> incr completions))
  in
  Desim.Sim.run sim;
  check_int "nothing left hanging" 3 !completions;
  check_int "recorded as cancelled" 1 (Cluster.lock_stats cluster).Cluster.cancelled

let test_session_trace_completes_through_runner () =
  let trace = Workload.Sessions.generate small_sessions in
  let r =
    Experiments.Runner.run Experiments.Scenario.default
      (Experiments.Scenario.Anu Placement.Anu.default_config)
      ~trace ()
  in
  check_int "all session ops complete" r.Experiments.Runner.submitted
    r.Experiments.Runner.completed

let suite =
  [
    Alcotest.test_case "sessions structure" `Quick test_sessions_structure;
    Alcotest.test_case "sessions deterministic" `Quick test_sessions_deterministic;
    Alcotest.test_case "sessions validation" `Quick test_sessions_validation;
    Alcotest.test_case "namespace longest prefix" `Quick
      test_namespace_longest_prefix;
    Alcotest.test_case "namespace boundaries" `Quick
      test_namespace_component_boundaries;
    Alcotest.test_case "namespace mount/unmount" `Quick
      test_namespace_mount_unmount;
    Alcotest.test_case "namespace validation" `Quick test_namespace_validation;
    Alcotest.test_case "conflicting acquire waits" `Quick
      test_conflicting_acquire_waits_for_release;
    Alcotest.test_case "shared locks coexist" `Quick
      test_shared_locks_do_not_conflict;
    Alcotest.test_case "lease reclaims abandoned lock" `Quick
      test_lease_reclaims_abandoned_lock;
    Alcotest.test_case "queued acquire cancelled" `Quick
      test_release_of_queued_acquire_completes_it;
    Alcotest.test_case "session trace through runner" `Slow
      test_session_trace_completes_through_runner;
  ]
