(* SAN data path and the Section 2 motivation experiment. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float eps = Alcotest.(check (float eps))

let test_transfer_timing () =
  let sim = Desim.Sim.create () in
  let san = Sharedfs.San.create sim ~bandwidth:1e6 in
  let done_at = ref 0.0 in
  Sharedfs.San.transfer san ~bytes:500_000 ~on_complete:(fun () ->
      done_at := Desim.Sim.now sim);
  Desim.Sim.run sim;
  check_float 1e-9 "half a second at 1 MB/s" 0.5 !done_at;
  check_int "completed" 1 (Sharedfs.San.transfers_completed san);
  check_int "bytes" 500_000 (Sharedfs.San.bytes_completed san)

let test_transfers_share_the_pipe () =
  let sim = Desim.Sim.create () in
  let san = Sharedfs.San.create sim ~bandwidth:1e6 in
  let finished = ref [] in
  for i = 1 to 3 do
    Sharedfs.San.transfer san ~bytes:1_000_000 ~on_complete:(fun () ->
        finished := (i, Desim.Sim.now sim) :: !finished)
  done;
  Desim.Sim.run sim;
  (* FIFO through the shared pipe: 1 s, 2 s, 3 s. *)
  let times = List.rev_map snd !finished in
  Alcotest.(check (list (float 1e-9))) "serialized" [ 1.0; 2.0; 3.0 ] times

let test_utilization () =
  let sim = Desim.Sim.create () in
  let san = Sharedfs.San.create sim ~bandwidth:1e6 in
  Sharedfs.San.transfer san ~bytes:2_000_000 ~on_complete:(fun () -> ());
  Desim.Sim.run sim;
  check_float 1e-9 "busy 2s of 10" 0.2 (Sharedfs.San.utilization san ~until:10.0)

let test_validation () =
  let sim = Desim.Sim.create () in
  Alcotest.check_raises "bandwidth"
    (Invalid_argument "San.create: bandwidth must be positive") (fun () ->
      ignore (Sharedfs.San.create sim ~bandwidth:0.0));
  let san = Sharedfs.San.create sim ~bandwidth:1.0 in
  Alcotest.check_raises "bytes"
    (Invalid_argument "San.transfer: bytes must be positive") (fun () ->
      Sharedfs.San.transfer san ~bytes:0 ~on_complete:(fun () -> ()))

let test_motivation_experiment () =
  (* The Section 2 claim, in miniature: identical data work, but the
     imbalanced cluster defers more of it past the trace window and
     suffers far higher open latencies. *)
  match Experiments.Motivation.experiment ~quick:true () with
  | [ static; anu ] ->
    Alcotest.(check string) "static first" "round-robin"
      static.Experiments.Motivation.policy_name;
    check_bool "same total data" true
      (static.Experiments.Motivation.data_bytes_total
      = anu.Experiments.Motivation.data_bytes_total);
    check_bool "anu opens faster" true
      (anu.Experiments.Motivation.mean_open_latency
      < static.Experiments.Motivation.mean_open_latency);
    check_bool "anu lands at least as much data in the window" true
      (anu.Experiments.Motivation.data_bytes_in_window
      >= static.Experiments.Motivation.data_bytes_in_window)
  | _ -> Alcotest.fail "expected two results"

let suite =
  [
    Alcotest.test_case "transfer timing" `Quick test_transfer_timing;
    Alcotest.test_case "pipe serializes" `Quick test_transfers_share_the_pipe;
    Alcotest.test_case "utilization" `Quick test_utilization;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "motivation experiment" `Slow test_motivation_experiment;
  ]
