(* Heuristics: the full decision table for the three anti-over-tuning
   policies. *)

open Placement
module H = Heuristics

let decision = Alcotest.testable
    (fun fmt -> function
      | H.Shrink -> Format.fprintf fmt "Shrink"
      | H.Grow -> Format.fprintf fmt "Grow"
      | H.Hold -> Format.fprintf fmt "Hold")
    ( = )

let check = Alcotest.check decision

let test_none_is_aggressive () =
  (* No heuristics: any deviation from the average acts. *)
  check "above" H.Shrink
    (H.decide H.none ~average:10.0 ~latency:10.1 ~previous:None);
  check "below" H.Grow
    (H.decide H.none ~average:10.0 ~latency:9.9 ~previous:None);
  check "equal" H.Hold (H.decide H.none ~average:10.0 ~latency:10.0 ~previous:None)

let test_threshold_dead_band () =
  let t = { H.none with H.threshold = Some 0.5 } in
  (* Band is [avg/1.5, avg*1.5] = [6.67, 15]. *)
  check "inside above" H.Hold
    (H.decide t ~average:10.0 ~latency:14.0 ~previous:None);
  check "inside below" H.Hold
    (H.decide t ~average:10.0 ~latency:7.0 ~previous:None);
  check "above band" H.Shrink
    (H.decide t ~average:10.0 ~latency:16.0 ~previous:None);
  check "below band" H.Grow
    (H.decide t ~average:10.0 ~latency:6.0 ~previous:None)

let test_top_off_never_grows () =
  let t = { H.none with H.top_off = true } in
  check "would grow -> hold" H.Hold
    (H.decide t ~average:10.0 ~latency:1.0 ~previous:None);
  check "still shrinks" H.Shrink
    (H.decide t ~average:10.0 ~latency:20.0 ~previous:None)

let test_divergent_needs_history () =
  let t = { H.none with H.divergent = true } in
  (* Without history the policy is ignored (delegate crash case). *)
  check "no history shrink allowed" H.Shrink
    (H.decide t ~average:10.0 ~latency:20.0 ~previous:None);
  (* Above average but falling: converging on its own, leave it. *)
  check "above and falling -> hold" H.Hold
    (H.decide t ~average:10.0 ~latency:20.0 ~previous:(Some 30.0));
  (* Above average and rising: diverging, act. *)
  check "above and rising -> shrink" H.Shrink
    (H.decide t ~average:10.0 ~latency:20.0 ~previous:(Some 15.0));
  (* Below average and rising: converging upward, leave it. *)
  check "below and rising -> hold" H.Hold
    (H.decide t ~average:10.0 ~latency:5.0 ~previous:(Some 2.0));
  (* Below average and falling: diverging downward, grow it. *)
  check "below and falling -> grow" H.Grow
    (H.decide t ~average:10.0 ~latency:5.0 ~previous:(Some 8.0))

let test_all_three_composition () =
  let t = H.all_three in
  (* Inside the wide default band nothing happens regardless of
     history. *)
  check "inside band" H.Hold
    (H.decide t ~average:10.0 ~latency:25.0 ~previous:(Some 5.0));
  (* Far above and rising: shrink. *)
  check "overloaded rising" H.Shrink
    (H.decide t ~average:10.0 ~latency:50.0 ~previous:(Some 40.0));
  (* Far above but falling: divergent blocks. *)
  check "overloaded falling" H.Hold
    (H.decide t ~average:10.0 ~latency:50.0 ~previous:(Some 80.0));
  (* Far below: top-off blocks growth. *)
  check "idle stays idle" H.Hold
    (H.decide t ~average:10.0 ~latency:0.0 ~previous:(Some 0.0))

let test_presets () =
  Alcotest.(check bool) "none" true
    (H.none.H.threshold = None && (not H.none.H.top_off)
    && not H.none.H.divergent);
  Alcotest.(check bool) "threshold_only" true
    (H.threshold_only.H.threshold = Some H.default_threshold
    && (not H.threshold_only.H.top_off)
    && not H.threshold_only.H.divergent);
  Alcotest.(check bool) "top_off_only" true
    (H.top_off_only.H.top_off && H.top_off_only.H.threshold = None);
  Alcotest.(check bool) "divergent_only" true
    (H.divergent_only.H.divergent && not H.divergent_only.H.top_off);
  Alcotest.(check bool) "all_three" true
    (H.all_three.H.top_off && H.all_three.H.divergent
    && H.all_three.H.threshold = Some H.default_threshold)

let test_describe () =
  Alcotest.(check string) "none" "no heuristics" (H.describe H.none);
  Alcotest.(check bool) "all mentions top-off" true
    (String.length (H.describe H.all_three) > 10)

let suite =
  [
    Alcotest.test_case "none is aggressive" `Quick test_none_is_aggressive;
    Alcotest.test_case "threshold dead band" `Quick test_threshold_dead_band;
    Alcotest.test_case "top-off never grows" `Quick test_top_off_never_grows;
    Alcotest.test_case "divergent" `Quick test_divergent_needs_history;
    Alcotest.test_case "all three composed" `Quick test_all_three_composition;
    Alcotest.test_case "presets" `Quick test_presets;
    Alcotest.test_case "describe" `Quick test_describe;
  ]
