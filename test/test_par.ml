(* Par.Pool: ordering, serial fast path, exception propagation, and
   the parallel == serial determinism contract on a real figure. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_run_serial_fast_path () =
  (* jobs <= 1 runs in the calling domain, in order. *)
  let order = ref [] in
  let results =
    Par.Pool.run ~jobs:1
      (List.init 5 (fun i () ->
           order := i :: !order;
           i * i))
  in
  Alcotest.(check (list int)) "results" [ 0; 1; 4; 9; 16 ] results;
  Alcotest.(check (list int)) "execution order" [ 0; 1; 2; 3; 4 ]
    (List.rev !order)

let test_run_parallel_preserves_order () =
  (* Results come back in thunk order regardless of completion order;
     later thunks finish first here because they spin less. *)
  let spin n =
    let acc = ref 0 in
    for i = 1 to n do
      acc := !acc + i
    done;
    !acc
  in
  let results =
    Par.Pool.run ~jobs:4
      (List.init 8 (fun i () ->
           ignore (spin ((8 - i) * 100_000));
           i))
  in
  Alcotest.(check (list int)) "input order" [ 0; 1; 2; 3; 4; 5; 6; 7 ] results

let test_run_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Par.Pool.run ~jobs:4 []);
  Alcotest.(check (list string)) "singleton" [ "x" ]
    (Par.Pool.run ~jobs:4 [ (fun () -> "x") ])

exception Boom of int

let test_run_propagates_exception () =
  match Par.Pool.run ~jobs:2 [ (fun () -> 1); (fun () -> raise (Boom 7)) ] with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom 7 -> ()
  | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)

let test_run_earliest_exception_wins () =
  (* Both thunks fail; the earliest thunk's exception is reported and
     every future is still awaited first (no dangling work). *)
  match
    Par.Pool.run ~jobs:2
      [ (fun () -> raise (Boom 1)); (fun () -> raise (Boom 2)) ]
  with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom n -> check_int "earliest thunk" 1 n

let test_pool_reuse_across_batches () =
  let pool = Par.Pool.create ~domains:2 in
  Fun.protect
    ~finally:(fun () -> Par.Pool.shutdown pool)
    (fun () ->
      for batch = 0 to 3 do
        let futures =
          List.init 6 (fun i -> Par.Pool.submit pool (fun () -> (batch * 10) + i))
        in
        let got = List.map Par.Pool.await futures in
        Alcotest.(check (list int))
          "batch results"
          (List.init 6 (fun i -> (batch * 10) + i))
          got
      done)

let test_await_after_shutdown_resolved () =
  (* Futures resolved before shutdown stay readable afterwards. *)
  let pool = Par.Pool.create ~domains:1 in
  let f = Par.Pool.submit pool (fun () -> 41 + 1) in
  let v = Par.Pool.await f in
  Par.Pool.shutdown pool;
  check_int "value survives shutdown" 42 (Par.Pool.await f);
  check_int "first read" 42 v

(* The acceptance contract of the fan-out: a figure regenerated with
   jobs > 1 is indistinguishable from the serial run.  Wall-clock
   fields are the only nondeterministic outputs, so compare everything
   else. *)
let comparable (r : Experiments.Runner.result) =
  ( ( r.label,
      r.policy_name,
      r.duration,
      r.per_server_mean,
      r.per_server_requests,
      r.utilizations ),
    ( r.overall_mean,
      r.overall_p95,
      r.overall_max,
      r.submitted,
      r.completed,
      r.reconfig_rounds,
      r.sim_events,
      List.length r.moves ) )

let test_parallel_figure_matches_serial () =
  let build = Option.get (Experiments.Figures.by_id "fig6") in
  let serial = build ~quick:true ~jobs:1 () in
  let parallel = build ~quick:true ~jobs:3 () in
  let a = List.map comparable serial.Experiments.Figures.results in
  let b = List.map comparable parallel.Experiments.Figures.results in
  check_int "same run count" (List.length a) (List.length b);
  check_bool "identical results" true (a = b)

(* Same contract with the full observability pipeline attached: span
   tracing and telemetry must not perturb the simulations under
   fan-out (each run gets an isolated registry and span counter; only
   sink interleaving may differ, and that is not part of the
   results). *)
let test_parallel_traced_matches_serial () =
  let build = Option.get (Experiments.Figures.by_id "fig6") in
  let run jobs =
    let ring = Obs.Sink.Ring.create ~capacity:500_000 in
    let obs =
      Obs.Ctx.create
        ~sinks:[ Obs.Sink.Ring.sink ring ]
        ~telemetry:(Obs.Telemetry.create ()) ()
    in
    build ~quick:true ~jobs ~obs ()
  in
  let serial = run 1 in
  let parallel = run 3 in
  let a = List.map comparable serial.Experiments.Figures.results in
  let b = List.map comparable parallel.Experiments.Figures.results in
  check_int "same run count" (List.length a) (List.length b);
  check_bool "identical results under tracing" true (a = b);
  List.iter2
    (fun (r1 : Experiments.Runner.result) (r2 : Experiments.Runner.result) ->
      check_bool "telemetry snapshot present" true (r1.telemetry <> None);
      check_bool "identical telemetry snapshots" true
        (r1.telemetry = r2.telemetry))
    serial.Experiments.Figures.results parallel.Experiments.Figures.results

(* The single-run fan-out: one streaming simulation sharded across
   domains must be byte-identical to the serial driver — not just the
   headline numbers but every per-server series point, every latency
   percentile, and every move record in issue order.  Wall clock and
   heap peak are the only legitimately different fields (the heap is
   per-shard under fan-out). *)
let stream_result ~jobs ~requests ~seed =
  let stream =
    Workload.Dfs_like.stream
      { Workload.Dfs_like.default_config with requests; seed }
  in
  Experiments.Runner.run_stream Experiments.Scenario.default
    (Experiments.Scenario.Anu Placement.Anu.default_config)
    ~stream ~jobs ()

let expect_identical_run ~what (a : Experiments.Runner.result)
    (b : Experiments.Runner.result) =
  let ck name cond = check_bool (what ^ ": " ^ name) true cond in
  check_int (what ^ ": submitted") a.submitted b.submitted;
  check_int (what ^ ": completed") a.completed b.completed;
  check_int (what ^ ": reconfig_rounds") a.reconfig_rounds b.reconfig_rounds;
  check_int (what ^ ": sim_events") a.sim_events b.sim_events;
  check_int (what ^ ": move count") (List.length a.moves)
    (List.length b.moves);
  ck "moves" (a.moves = b.moves);
  ck "duration" (a.duration = b.duration);
  ck "overall_mean" (a.overall_mean = b.overall_mean);
  ck "overall_p95" (a.overall_p95 = b.overall_p95);
  ck "overall_max" (a.overall_max = b.overall_max);
  ck "per_server_mean" (a.per_server_mean = b.per_server_mean);
  ck "per_server_requests" (a.per_server_requests = b.per_server_requests);
  ck "utilizations" (a.utilizations = b.utilizations);
  ck "server_series" (a.server_series = b.server_series);
  ck "violations" (a.violations = b.violations)

let test_stream_parallel_matches_serial () =
  let requests = 20_000 and seed = 7 in
  let serial = stream_result ~jobs:1 ~requests ~seed in
  (* the workload must actually exercise the cross-shard machinery *)
  check_bool "serial run moved file sets" true (List.length serial.moves > 0);
  List.iter
    (fun jobs ->
      let par = stream_result ~jobs ~requests ~seed in
      expect_identical_run
        ~what:(Printf.sprintf "jobs=%d" jobs)
        serial par)
    [ 2; 3; 5 ]

let suite =
  [
    Alcotest.test_case "serial fast path" `Quick test_run_serial_fast_path;
    Alcotest.test_case "parallel preserves order" `Quick
      test_run_parallel_preserves_order;
    Alcotest.test_case "empty and singleton" `Quick test_run_empty_and_singleton;
    Alcotest.test_case "exception propagation" `Quick
      test_run_propagates_exception;
    Alcotest.test_case "earliest exception wins" `Quick
      test_run_earliest_exception_wins;
    Alcotest.test_case "pool reuse" `Quick test_pool_reuse_across_batches;
    Alcotest.test_case "await after shutdown" `Quick
      test_await_after_shutdown_resolved;
    Alcotest.test_case "parallel figure == serial" `Slow
      test_parallel_figure_matches_serial;
    Alcotest.test_case "parallel figure == serial under tracing" `Slow
      test_parallel_traced_matches_serial;
    Alcotest.test_case "parallel stream run == serial" `Slow
      test_stream_parallel_matches_serial;
  ]
