(* Failure-domain topology: validation, the flat default, cluster
   wiring, rack chunking, the ANU domain-spread constraint and the
   injector's fail-fast domain resolution. *)

open Sharedfs
module Id = Server_id

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let ids l = List.map Id.of_int l

let rack name servers = { Topology.name; kind = Topology.Rack; servers }

let invalid_arg_message f =
  match f () with
  | exception Invalid_argument m -> m
  | _ -> "<no exception raised>"

let test_make_validation () =
  check_string "empty domain list"
    "Topology.make: at least one domain is required"
    (invalid_arg_message (fun () -> ignore (Topology.make [])));
  check_string "empty name" "Topology.make: domain names must be non-empty"
    (invalid_arg_message (fun () ->
         ignore (Topology.make [ rack "" (ids [ 0 ]) ])));
  check_string "duplicate name" "Topology.make: duplicate domain name \"r\""
    (invalid_arg_message (fun () ->
         ignore
           (Topology.make [ rack "r" (ids [ 0 ]); rack "r" (ids [ 1 ]) ])));
  check_string "empty member list"
    "Topology.make: domain \"r\" has no servers"
    (invalid_arg_message (fun () -> ignore (Topology.make [ rack "r" [] ])));
  check_string "server in two domains"
    "Topology.make: server 1 is in both \"a\" and \"b\""
    (invalid_arg_message (fun () ->
         ignore
           (Topology.make [ rack "a" (ids [ 0; 1 ]); rack "b" (ids [ 1 ]) ])))

let test_accessors () =
  let t = Topology.make [ rack "a" (ids [ 3; 1 ]); rack "b" (ids [ 0 ]) ] in
  check_bool "not flat" false (Topology.is_flat t);
  check_int "two domains" 2 (Topology.domain_count t);
  check_bool "names in declaration order" true
    (Topology.domain_names t = [ "a"; "b" ]);
  check_bool "mem_domain" true
    (Topology.mem_domain t "a" && not (Topology.mem_domain t "zzz"));
  check_bool "servers_of keeps declaration order" true
    (Topology.servers_of t "a" = Some (ids [ 3; 1 ]));
  check_bool "servers_of unknown" true (Topology.servers_of t "zzz" = None);
  check_bool "domain_of" true
    (Topology.domain_of t (Id.of_int 1) = Some "a"
    && Topology.domain_of t (Id.of_int 0) = Some "b"
    && Topology.domain_of t (Id.of_int 9) = None);
  check_bool "all_servers sorted" true (Topology.all_servers t = ids [ 0; 1; 3 ])

let test_flat () =
  let t = Topology.flat ~servers:(ids [ 2; 0; 1 ]) in
  check_bool "flat is flat" true (Topology.is_flat t);
  check_bool "one domain named flat" true
    (Topology.domain_names t = [ "flat" ]);
  check_bool "every server assigned" true
    (List.for_all
       (fun id -> Topology.domain_of t id = Some "flat")
       (ids [ 0; 1; 2 ]));
  (* The degenerate empty cluster still yields a (vacuously flat)
     topology rather than raising. *)
  let empty = Topology.flat ~servers:[] in
  check_bool "empty flat is flat" true (Topology.is_flat empty);
  check_int "empty flat has no domains" 0 (Topology.domain_count empty)

let make_cluster ?topology () =
  let sim = Desim.Sim.create () in
  let disk = Shared_disk.create () in
  let catalog = File_set.Catalog.create [ "a"; "b"; "c"; "d" ] in
  let servers = List.map (fun i -> (Id.of_int i, 1.0)) [ 0; 1; 2 ] in
  Cluster.create sim ~disk ~catalog ~series_interval:10.0 ~servers ?topology ()

let test_cluster_wiring () =
  (* No topology: the cluster defaults to flat over its own servers,
     so every pre-topology call site is unchanged. *)
  let c = make_cluster () in
  check_bool "default is flat" true (Topology.is_flat (Cluster.topology c));
  check_bool "flat covers the cluster" true
    (Topology.all_servers (Cluster.topology c) = ids [ 0; 1; 2 ]);
  let topo = Topology.make [ rack "a" (ids [ 0 ]); rack "b" (ids [ 1; 2 ]) ] in
  let c2 = make_cluster ~topology:topo () in
  check_bool "explicit topology exposed" true
    (Topology.domain_names (Cluster.topology c2) = [ "a"; "b" ]);
  (* A topology naming a server the cluster does not have is a
     configuration error, caught at creation. *)
  let bad = Topology.make [ rack "a" (ids [ 0; 7 ]) ] in
  check_string "foreign server rejected"
    "Cluster.create: topology server 7 is not in the cluster"
    (invalid_arg_message (fun () -> ignore (make_cluster ~topology:bad ())))

let test_rack_topology_chunking () =
  let sizes t =
    List.map
      (fun d -> List.length d.Topology.servers)
      (Topology.domains t)
  in
  let t2 = Experiments.Scenario.rack_topology ~domains:2 () in
  check_bool "5 over 2 racks is 2+3" true (sizes t2 = [ 2; 3 ]);
  check_bool "paper topology matches" true
    (Topology.servers_of t2 "rack0" = Some (ids [ 0; 1 ])
    && Topology.servers_of t2 "rack1" = Some (ids [ 2; 3; 4 ]));
  let t3 = Experiments.Scenario.rack_topology ~domains:3 () in
  check_bool "5 over 3 racks is 1+2+2" true (sizes t3 = [ 1; 2; 2 ]);
  let t5 = Experiments.Scenario.rack_topology ~domains:5 () in
  check_bool "5 over 5 racks is singletons" true
    (sizes t5 = [ 1; 1; 1; 1; 1 ]);
  check_bool "zero domains rejected" true
    (match Experiments.Scenario.rack_topology ~domains:0 () with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "more domains than servers rejected" true
    (match Experiments.Scenario.rack_topology ~domains:6 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_injector_rejects_unknown_domain () =
  (* A plan referencing a domain the cluster's topology lacks must
     fail at arm time, before any fault fires. *)
  let c = make_cluster () in
  let sim = Cluster.sim c in
  let plan =
    Fault.Plan.make ~seed:1
      [ Fault.Plan.Domain_crash_at { at = 5.0; domain = "rack9" } ]
  in
  let nop = ignore in
  let actions =
    {
      Fault.Injector.crash_server = nop;
      recover_server = nop;
      crash_delegate = (fun () -> ());
      partition_server = (fun _ ~link:_ -> ());
      heal_server = nop;
      crash_domain = (fun ~domain:_ _ -> ());
      recover_domain = (fun ~domain:_ _ -> ());
      partition_domain = (fun ~domain:_ _ ~link:_ -> ());
      heal_domain = (fun ~domain:_ _ -> ());
    }
  in
  let msg =
    invalid_arg_message (fun () ->
        ignore
          (Fault.Injector.arm ~sim ~cluster:c ~obs:Obs.Ctx.null ~duration:100.0
             ~actions plan))
  in
  check_bool "arm names the missing domain and the real ones" true
    (let has needle =
       let n = String.length needle and m = String.length msg in
       let rec at i = i + n <= m && (String.sub msg i n = needle || at (i + 1)) in
       at 0
     in
     has "rack9" && has "flat")

let test_anu_domain_spread_enforced () =
  (* Two racks over five equal servers: rack0 = {0}, rack1 = {1..4}.
     Feed tuning rounds that, unconstrained, would hand rack1 nearly
     the whole mapped half; the spread cap must clamp rack1 at
     (4/5 + 0.1) of the mapped measure while the unconstrained twin
     sails past it. *)
  let family = Hashlib.Hash_family.create ~seed:5 in
  let servers = ids [ 0; 1; 2; 3; 4 ] in
  let topo =
    Topology.make [ rack "rack0" (ids [ 0 ]); rack "rack1" (ids [ 1; 2; 3; 4 ]) ]
  in
  let run ~domain_spread =
    let config =
      {
        Placement.Anu.default_config with
        heuristics = Placement.Heuristics.none;
        domain_spread;
      }
    in
    let t = Placement.Anu.create ~config ~topology:topo ~family ~servers () in
    (* Server 0 slow (high latency), the rack1 four fast: repeated
       rounds shrink region 0 toward the floor. *)
    let report id latency =
      {
        Delegate.server = Id.of_int id;
        speed_hint = 1.0;
        report =
          { Server.mean_latency = latency; max_latency = latency; requests = 100 };
      }
    in
    for _ = 1 to 12 do
      Placement.Anu.rebalance t
        {
          Placement.Policy.time = 0.0;
          reports =
            [
              report 0 100.0; report 1 1.0; report 2 1.0; report 3 1.0;
              report 4 1.0;
            ];
          future_demand = lazy [];
        }
    done;
    let measures = Placement.Region_map.measures (Placement.Anu.region_map t) in
    List.fold_left
      (fun acc (id, m) -> if Id.to_int id > 0 then acc +. m else acc)
      0.0 measures
  in
  let constrained = run ~domain_spread:(Some 0.1) in
  let unconstrained = run ~domain_spread:None in
  (* Cap: (4/5 + 0.1) x 0.5 = 0.45 of the unit interval. *)
  check_bool "constrained rack1 is capped" true (constrained <= 0.45 +. 1e-9);
  check_bool "unconstrained rack1 exceeds the cap" true
    (unconstrained > 0.45 +. 1e-6);
  check_bool "flat topology never clamps" true
    (let flat_t =
       Placement.Anu.create ~family ~servers ()
     in
     Topology.is_flat (Placement.Anu.topology flat_t))

let suite =
  [
    Alcotest.test_case "make: validation" `Quick test_make_validation;
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "flat default" `Quick test_flat;
    Alcotest.test_case "cluster wiring" `Quick test_cluster_wiring;
    Alcotest.test_case "rack_topology chunking" `Quick
      test_rack_topology_chunking;
    Alcotest.test_case "injector rejects unknown domain" `Quick
      test_injector_rejects_unknown_domain;
    Alcotest.test_case "anu domain spread enforced" `Quick
      test_anu_domain_spread_enforced;
  ]
