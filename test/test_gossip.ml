(* Decentralized pair-wise gossip rescaling. *)

open Placement
module Id = Sharedfs.Server_id

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ids n = List.init n Id.of_int

let family = Hashlib.Hash_family.create ~seed:404

let report ?(requests = 100) server latency =
  {
    Sharedfs.Delegate.server;
    speed_hint = 1.0;
    report =
      { Sharedfs.Server.mean_latency = latency; max_latency = latency; requests };
  }

let feedback reports =
  { Policy.time = 0.0; reports; future_demand = lazy [] }

let test_locate_deterministic () =
  let a = Gossip.create ~family ~servers:(ids 4) () in
  let b = Gossip.create ~family ~servers:(ids 4) () in
  for i = 0 to 99 do
    let name = Printf.sprintf "fs-%d" i in
    check_bool "same" true (Id.equal (Gossip.locate a name) (Gossip.locate b name))
  done

let test_pair_transfer_conserves_half_occupancy () =
  let t = Gossip.create ~family ~servers:(ids 4) () in
  for round = 1 to 20 do
    ignore round;
    Gossip.rebalance t
      (feedback
         [ report (Id.of_int 0) 100.0; report (Id.of_int 1) 5.0;
           report (Id.of_int 2) 50.0; report (Id.of_int 3) 8.0 ])
  done;
  Alcotest.(check (float 1e-6))
    "half occupancy" 0.5
    (Region_map.total_measure (Gossip.region_map t));
  Alcotest.(check (list string))
    "invariants" []
    (Region_map.check_invariants (Gossip.region_map t))

let test_overloaded_server_sheds () =
  let t = Gossip.create ~family ~servers:(ids 2) () in
  let before = Region_map.measure_of (Gossip.region_map t) (Id.of_int 0) in
  (* With two servers, every round pairs them. *)
  for _ = 1 to 5 do
    Gossip.rebalance t
      (feedback [ report (Id.of_int 0) 100.0; report (Id.of_int 1) 5.0 ])
  done;
  let after = Region_map.measure_of (Gossip.region_map t) (Id.of_int 0) in
  check_bool "shed" true (after < before);
  check_bool "exchanges counted" true (Gossip.exchanges t >= 5)

let test_balanced_pairs_hold () =
  let t = Gossip.create ~family ~servers:(ids 2) () in
  let before = Region_map.measures (Gossip.region_map t) in
  Gossip.rebalance t
    (feedback [ report (Id.of_int 0) 10.0; report (Id.of_int 1) 9.0 ]);
  check_bool "unchanged" true
    (before = Region_map.measures (Gossip.region_map t));
  check_int "no exchanges" 0 (Gossip.exchanges t)

let test_idle_partner_gets_only_probe () =
  let t = Gossip.create ~family ~servers:(ids 2) () in
  (* Crush server 0 to zero. *)
  for _ = 1 to 30 do
    Gossip.rebalance t
      (feedback [ report (Id.of_int 0) 1000.0; report (Id.of_int 1) 5.0 ])
  done;
  let m0 = Region_map.measure_of (Gossip.region_map t) (Id.of_int 0) in
  (* Now it is idle; a heavily loaded partner may hand it at most a
     probe-sized chunk per round. *)
  Gossip.rebalance t
    (feedback [ report ~requests:0 (Id.of_int 0) 0.0; report (Id.of_int 1) 50.0 ]);
  let m0' = Region_map.measure_of (Gossip.region_map t) (Id.of_int 0) in
  let width = Region_map.width (Gossip.region_map t) in
  check_bool "grew" true (m0' > m0);
  check_bool "bounded by probe" true (m0' -. m0 <= (0.25 *. width) +. 1e-9)

let test_membership_changes () =
  let t = Gossip.create ~family ~servers:(ids 5) () in
  Gossip.server_failed t (Id.of_int 2);
  Alcotest.(check (float 1e-6))
    "half after failure" 0.5
    (Region_map.total_measure (Gossip.region_map t));
  Gossip.server_added t (Id.of_int 2);
  Alcotest.(check (float 1e-6))
    "half after re-add" 0.5
    (Region_map.total_measure (Gossip.region_map t));
  check_int "five servers" 5 (List.length (Region_map.servers (Gossip.region_map t)))

let test_config_validation () =
  Alcotest.check_raises "gain"
    (Invalid_argument "Gossip.create: transfer_gain must lie in (0, 1]")
    (fun () ->
      ignore
        (Gossip.create
           ~config:{ Gossip.default_config with transfer_gain = 0.0 }
           ~family ~servers:(ids 2) ()))

let suite =
  [
    Alcotest.test_case "locate deterministic" `Quick test_locate_deterministic;
    Alcotest.test_case "conserves half occupancy" `Quick
      test_pair_transfer_conserves_half_occupancy;
    Alcotest.test_case "overloaded sheds" `Quick test_overloaded_server_sheds;
    Alcotest.test_case "balanced pairs hold" `Quick test_balanced_pairs_hold;
    Alcotest.test_case "idle partner probe" `Quick test_idle_partner_gets_only_probe;
    Alcotest.test_case "membership changes" `Quick test_membership_changes;
    Alcotest.test_case "config validation" `Quick test_config_validation;
  ]
