(* Sharedfs substrates: requests, catalogs, shared disk, metadata
   store, lock manager, cache. *)

open Sharedfs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float eps = Alcotest.(check (float eps))

(* --- Request --- *)

let test_request_factors () =
  List.iter
    (fun op ->
      check_bool "factor positive" true (Request.demand_factor op > 0.0))
    Request.all_ops;
  check_bool "rename heavier than stat" true
    (Request.demand_factor Request.Rename > Request.demand_factor Request.Stat)

let test_request_dirtiness () =
  check_bool "stat clean" false (Request.dirties_cache Request.Stat);
  check_bool "create dirty" true (Request.dirties_cache Request.Create);
  check_bool "rename dirty" true (Request.dirties_cache Request.Rename)

let test_request_names_unique () =
  let names = List.map Request.op_name Request.all_ops in
  check_int "distinct" (List.length names)
    (List.length (List.sort_uniq String.compare names))

(* --- File_set catalog --- *)

let test_catalog_basics () =
  let c = File_set.Catalog.create [ "a"; "b"; "c" ] in
  check_int "size" 3 (File_set.Catalog.size c);
  let b = File_set.Catalog.get c "b" in
  check_int "dense id" 1 b.File_set.id;
  Alcotest.(check (list string)) "names" [ "a"; "b"; "c" ]
    (File_set.Catalog.names c);
  check_bool "find none" true (File_set.Catalog.find c "zz" = None);
  check_bool "sizes derived" true (b.File_set.file_count >= 100)

let test_catalog_rejects_duplicates () =
  Alcotest.check_raises "dup"
    (Invalid_argument "File_set.Catalog.create: duplicate name a") (fun () ->
      ignore (File_set.Catalog.create [ "a"; "a" ]))

let test_catalog_sizes_deterministic () =
  let c1 = File_set.Catalog.create [ "x" ] in
  let c2 = File_set.Catalog.create [ "x" ] in
  check_int "same derived size"
    (File_set.Catalog.get c1 "x").File_set.file_count
    (File_set.Catalog.get c2 "x").File_set.file_count

(* --- Shared_disk --- *)

let test_disk_round_trip () =
  let d = Shared_disk.create () in
  let t_w = Shared_disk.write d ~block:42 "hello" in
  check_bool "write takes time" true (t_w > 0.0);
  let data, t_r = Shared_disk.read d ~block:42 in
  check_bool "read takes time" true (t_r > 0.0);
  Alcotest.(check (option string)) "data" (Some "hello") data;
  check_int "writes" 1 (Shared_disk.blocks_written d);
  check_int "reads" 1 (Shared_disk.blocks_read d)

let test_disk_missing_block () =
  let d = Shared_disk.create () in
  let data, _ = Shared_disk.read d ~block:7 in
  check_bool "none" true (data = None)

let test_disk_transfer_time_model () =
  let d = Shared_disk.create () in
  let cfg = Shared_disk.config d in
  check_float 1e-12 "zero bytes = overhead" cfg.Shared_disk.op_overhead
    (Shared_disk.transfer_time d ~bytes:0);
  let big = Shared_disk.transfer_time d ~bytes:100_000_000 in
  check_float 0.01 "1 second at 100MB/s"
    (1.0 +. cfg.Shared_disk.op_overhead)
    big;
  Alcotest.check_raises "negative"
    (Invalid_argument "Shared_disk.transfer_time: negative bytes") (fun () ->
      ignore (Shared_disk.transfer_time d ~bytes:(-1)))

(* --- Metadata_store --- *)

let fs_catalog = File_set.Catalog.create [ "set-a"; "set-b" ]

let req op = { Request.op; file_set = "set-a"; path_hash = 12345; client = 0 }

let test_store_apply_and_dirty () =
  let fs = File_set.Catalog.get fs_catalog "set-a" in
  let s = Metadata_store.create ~file_set:fs in
  check_int "records" fs.File_set.file_count (Metadata_store.record_count s);
  check_int "clean initially" 0 (Metadata_store.dirty_count s);
  check_bool "stat clean" false (Metadata_store.apply s ~time:1.0 (req Request.Stat));
  check_int "still clean" 0 (Metadata_store.dirty_count s);
  check_bool "create dirties" true
    (Metadata_store.apply s ~time:2.0 (req Request.Create));
  check_int "one dirty" 1 (Metadata_store.dirty_count s);
  check_bool "dirty bytes" true (Metadata_store.dirty_bytes s > 0)

let test_store_flush_and_load_round_trip () =
  let fs = File_set.Catalog.get fs_catalog "set-a" in
  let s = Metadata_store.create ~file_set:fs in
  let disk = Shared_disk.create () in
  ignore (Metadata_store.apply s ~time:5.0 (req Request.Create));
  ignore (Metadata_store.apply s ~time:6.0 (req Request.Set_attr));
  let target_ino = 12345 mod fs.File_set.file_count in
  let before = Option.get (Metadata_store.lookup s ~ino:target_ino) in
  let flush_time = Metadata_store.flush s disk in
  check_bool "flush takes time" true (flush_time > 0.0);
  check_int "clean after flush" 0 (Metadata_store.dirty_count s);
  (* A different server loads the set from the shared disk and sees
     the flushed record. *)
  let s2, load_time = Metadata_store.load ~file_set:fs disk in
  check_bool "load takes time" true (load_time > 0.0);
  let after = Option.get (Metadata_store.lookup s2 ~ino:target_ino) in
  check_float 1e-9 "mtime travelled" before.Metadata_store.mtime
    after.Metadata_store.mtime;
  check_int "nlink travelled" before.Metadata_store.nlink
    after.Metadata_store.nlink

let test_store_distinct_sets_do_not_collide () =
  let fa = File_set.Catalog.get fs_catalog "set-a" in
  let fb = File_set.Catalog.get fs_catalog "set-b" in
  let sa = Metadata_store.create ~file_set:fa in
  let sb = Metadata_store.create ~file_set:fb in
  let disk = Shared_disk.create () in
  ignore (Metadata_store.apply sa ~time:1.0 (req Request.Create));
  ignore
    (Metadata_store.apply sb ~time:2.0
       {
         Request.op = Request.Create;
         file_set = "set-b";
         path_hash = 12345;
         client = 0;
       });
  ignore (Metadata_store.flush sa disk);
  ignore (Metadata_store.flush sb disk);
  let sa', _ = Metadata_store.load ~file_set:fa disk in
  let ino = 12345 mod fa.File_set.file_count in
  let ra = Option.get (Metadata_store.lookup sa' ~ino) in
  check_float 1e-9 "set-a kept its own mtime" 1.0 ra.Metadata_store.mtime

(* --- Lock_manager --- *)

let key ino = { Lock_manager.fs = 0; ino }

let test_lock_shared_compatible () =
  let lm = Lock_manager.create () in
  check_bool "grant 1" true
    (Lock_manager.acquire lm ~key:(key 1) ~client:1 ~mode:Lock_manager.Shared
    = `Granted);
  check_bool "grant 2" true
    (Lock_manager.acquire lm ~key:(key 1) ~client:2 ~mode:Lock_manager.Shared
    = `Granted);
  check_int "two holders" 2 (List.length (Lock_manager.holders lm ~key:(key 1)))

let test_lock_exclusive_queues () =
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm ~key:(key 1) ~client:1 ~mode:Lock_manager.Shared);
  check_bool "exclusive queued" true
    (Lock_manager.acquire lm ~key:(key 1) ~client:2 ~mode:Lock_manager.Exclusive
    = `Queued);
  (* A later shared request must queue behind the exclusive (no
     starvation of writers). *)
  check_bool "shared queues behind exclusive" true
    (Lock_manager.acquire lm ~key:(key 1) ~client:3 ~mode:Lock_manager.Shared
    = `Queued);
  let granted = Lock_manager.release lm ~key:(key 1) ~client:1 in
  Alcotest.(check (list int)) "writer granted" [ 2 ] granted;
  let granted = Lock_manager.release lm ~key:(key 1) ~client:2 in
  Alcotest.(check (list int)) "then reader" [ 3 ] granted

let test_lock_release_of_queued_request () =
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm ~key:(key 1) ~client:1 ~mode:Lock_manager.Exclusive);
  ignore (Lock_manager.acquire lm ~key:(key 1) ~client:2 ~mode:Lock_manager.Exclusive);
  ignore (Lock_manager.acquire lm ~key:(key 1) ~client:3 ~mode:Lock_manager.Exclusive);
  (* Client 2 gives up while queued. *)
  let granted = Lock_manager.release lm ~key:(key 1) ~client:2 in
  check_int "nothing granted yet" 0 (List.length granted);
  let granted = Lock_manager.release lm ~key:(key 1) ~client:1 in
  Alcotest.(check (list int)) "client 3 skips 2" [ 3 ] granted

let test_lock_double_acquire_rejected () =
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm ~key:(key 1) ~client:1 ~mode:Lock_manager.Shared);
  Alcotest.check_raises "double"
    (Invalid_argument "Lock_manager.acquire: client already holds this lock")
    (fun () ->
      ignore
        (Lock_manager.acquire lm ~key:(key 1) ~client:1
           ~mode:Lock_manager.Shared))

let test_lock_export_import () =
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm ~key:(key 1) ~client:1 ~mode:Lock_manager.Shared);
  ignore (Lock_manager.acquire lm ~key:(key 1) ~client:2 ~mode:Lock_manager.Exclusive);
  ignore
    (Lock_manager.acquire lm
       ~key:{ Lock_manager.fs = 1; ino = 1 }
       ~client:3 ~mode:Lock_manager.Shared);
  let state = Lock_manager.export lm ~fs:0 in
  check_int "one key exported" 1 (List.length state);
  check_int "set-b stays" 1 (Lock_manager.active_keys lm);
  (* The acquiring server imports the state wholesale. *)
  let lm2 = Lock_manager.create () in
  Lock_manager.import lm2 state;
  check_int "holder travelled" 1
    (List.length (Lock_manager.holders lm2 ~key:(key 1)));
  check_int "queue travelled" 1
    (List.length (Lock_manager.queued lm2 ~key:(key 1)))

let test_lock_state_cleanup () =
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm ~key:(key 9) ~client:1 ~mode:Lock_manager.Exclusive);
  ignore (Lock_manager.release lm ~key:(key 9) ~client:1);
  check_int "empty keys dropped" 0 (Lock_manager.active_keys lm)

(* --- Cache --- *)

let test_cache_cold_penalty_decays () =
  let c = Cache.create () in
  Cache.install_cold c ~fs:0;
  let m0 = Cache.demand_multiplier c ~fs:0 in
  check_float 1e-9 "cold multiplier" 3.0 m0;
  for _ = 1 to 200 do
    Cache.note_request c ~fs:0 ~dirties:false
  done;
  let m1 = Cache.demand_multiplier c ~fs:0 in
  check_bool "warmed" true (m1 < 1.05);
  check_bool "warmth grows" true (Cache.warmth c ~fs:0 > 0.95)

let test_cache_warm_install () =
  let c = Cache.create () in
  Cache.install_warm c ~fs:0;
  check_float 1e-9 "no penalty" 1.0 (Cache.demand_multiplier c ~fs:0)

let test_cache_unknown_set_no_penalty () =
  let c = Cache.create () in
  check_float 1e-9 "unknown" 1.0 (Cache.demand_multiplier c ~fs:99)

let test_cache_dirty_tracking_and_evict () =
  let c = Cache.create () in
  Cache.install_warm c ~fs:0;
  Cache.note_request c ~fs:0 ~dirties:true;
  Cache.note_request c ~fs:0 ~dirties:true;
  Cache.note_request c ~fs:0 ~dirties:false;
  let per_write = (Cache.config c).Cache.dirty_bytes_per_write in
  check_int "dirty bytes" (2 * per_write) (Cache.dirty_bytes c ~fs:0);
  check_int "total" (2 * per_write) (Cache.total_dirty_bytes c);
  let flushed = Cache.evict c ~fs:0 in
  check_int "evict returns dirty" (2 * per_write) flushed;
  check_int "gone" 0 (Cache.dirty_bytes c ~fs:0);
  check_bool "not resident" true (not (List.mem 0 (Cache.resident c)))

let test_cache_validation () =
  Alcotest.check_raises "warm_rate"
    (Invalid_argument "Cache.create: warm_rate must lie in [0, 1]") (fun () ->
      ignore (Cache.create ~config:{ Cache.default_config with warm_rate = 2.0 } ()))

(* --- Delegate --- *)

let test_delegate_election () =
  check_bool "none" true (Delegate.elect ~alive:[] = None);
  let alive = [ Server_id.of_int 3; Server_id.of_int 1; Server_id.of_int 2 ] in
  check_bool "lowest id" true
    (Delegate.elect ~alive = Some (Server_id.of_int 1))

let report id latency requests =
  {
    Delegate.server = Server_id.of_int id;
    speed_hint = 1.0;
    report = { Server.mean_latency = latency; max_latency = latency; requests };
  }

let test_delegate_averages () =
  let reports = [ report 0 10.0 1; report 1 20.0 3; report 2 0.0 0 ] in
  (* Weighted: (10*1 + 20*3 + 0*0) / 4 = 17.5; idle server excluded
     from the median. *)
  check_float 1e-9 "weighted" 17.5 (Delegate.mean_latency reports);
  check_float 1e-9 "median" 15.0 (Delegate.median_latency reports);
  check_float 1e-9 "median empty" 0.0
    (Delegate.median_latency [ report 0 0.0 0 ])

let suite =
  [
    Alcotest.test_case "request factors" `Quick test_request_factors;
    Alcotest.test_case "request dirtiness" `Quick test_request_dirtiness;
    Alcotest.test_case "request names unique" `Quick test_request_names_unique;
    Alcotest.test_case "catalog basics" `Quick test_catalog_basics;
    Alcotest.test_case "catalog duplicates" `Quick test_catalog_rejects_duplicates;
    Alcotest.test_case "catalog deterministic sizes" `Quick
      test_catalog_sizes_deterministic;
    Alcotest.test_case "disk round trip" `Quick test_disk_round_trip;
    Alcotest.test_case "disk missing block" `Quick test_disk_missing_block;
    Alcotest.test_case "disk transfer model" `Quick test_disk_transfer_time_model;
    Alcotest.test_case "store apply/dirty" `Quick test_store_apply_and_dirty;
    Alcotest.test_case "store flush/load round trip" `Quick
      test_store_flush_and_load_round_trip;
    Alcotest.test_case "store sets isolated" `Quick
      test_store_distinct_sets_do_not_collide;
    Alcotest.test_case "lock shared compatible" `Quick test_lock_shared_compatible;
    Alcotest.test_case "lock exclusive queues" `Quick test_lock_exclusive_queues;
    Alcotest.test_case "lock cancel queued" `Quick test_lock_release_of_queued_request;
    Alcotest.test_case "lock double acquire" `Quick test_lock_double_acquire_rejected;
    Alcotest.test_case "lock export/import" `Quick test_lock_export_import;
    Alcotest.test_case "lock cleanup" `Quick test_lock_state_cleanup;
    Alcotest.test_case "cache cold decay" `Quick test_cache_cold_penalty_decays;
    Alcotest.test_case "cache warm install" `Quick test_cache_warm_install;
    Alcotest.test_case "cache unknown set" `Quick test_cache_unknown_set_no_penalty;
    Alcotest.test_case "cache dirty/evict" `Quick test_cache_dirty_tracking_and_evict;
    Alcotest.test_case "cache validation" `Quick test_cache_validation;
    Alcotest.test_case "delegate election" `Quick test_delegate_election;
    Alcotest.test_case "delegate averages" `Quick test_delegate_averages;
  ]
