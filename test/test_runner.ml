(* Runner integration: full simulations on small workloads, membership
   events, result bookkeeping. *)

open Experiments

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let small_trace =
  Workload.Synthetic.generate
    {
      Workload.Synthetic.default_config with
      Workload.Synthetic.file_sets = 40;
      requests = 4_000;
      duration = 2_000.0;
    }

let scenario = Scenario.default

let test_all_policies_complete () =
  List.iter
    (fun spec ->
      let r = Runner.run scenario spec ~trace:small_trace () in
      check_int
        (Scenario.policy_name spec ^ " completes everything")
        r.Runner.submitted r.Runner.completed;
      check_bool "latencies sane" true (r.Runner.overall_mean > 0.0);
      check_int "five series" 5 (List.length r.Runner.server_series))
    [
      Scenario.Simple_random;
      Scenario.Round_robin;
      Scenario.Prescient;
      Scenario.Anu Placement.Anu.default_config;
    ]

let test_deterministic_repeat () =
  let spec = Scenario.Anu Placement.Anu.default_config in
  let a = Runner.run scenario spec ~trace:small_trace () in
  let b = Runner.run scenario spec ~trace:small_trace () in
  Alcotest.(check (float 1e-12))
    "identical means" a.Runner.overall_mean b.Runner.overall_mean;
  check_int "identical moves" (List.length a.Runner.moves)
    (List.length b.Runner.moves)

let test_static_policies_never_move () =
  List.iter
    (fun spec ->
      let r = Runner.run scenario spec ~trace:small_trace () in
      check_int "no moves" 0 (List.length r.Runner.moves))
    [ Scenario.Simple_random; Scenario.Round_robin ]

let test_reconfig_rounds_counted () =
  let r =
    Runner.run scenario (Scenario.Anu Placement.Anu.default_config)
      ~trace:small_trace ()
  in
  (* 2000 s / 120 s = 16 full intervals. *)
  check_int "rounds" 16 r.Runner.reconfig_rounds

let test_series_cover_duration () =
  let r =
    Runner.run scenario Scenario.Round_robin ~trace:small_trace ()
  in
  List.iter
    (fun (_, points) ->
      (* Buckets every 120 s covering [0, 2000]: 17 buckets. *)
      check_int "bucket count" 17 (List.length points))
    r.Runner.server_series

let test_failure_event () =
  let events =
    [
      { Runner.at = 500.0; action = Runner.Fail 4 };
    ]
  in
  let r =
    Runner.run scenario (Scenario.Anu Placement.Anu.default_config)
      ~trace:small_trace ~events ()
  in
  check_int "still completes everything" r.Runner.submitted r.Runner.completed;
  (* The failed server serves nothing after the event. *)
  let series = List.assoc 4 r.Runner.server_series in
  let late_requests =
    List.fold_left
      (fun acc p ->
        if p.Desim.Timeseries.bucket_start > 620.0 then
          acc + p.Desim.Timeseries.count
        else acc)
      0 series
  in
  check_int "dead server idle" 0 late_requests;
  (* Adoption moves with no source appear. *)
  check_bool "adoptions recorded" true
    (List.exists (fun m -> m.Sharedfs.Cluster.src = None) r.Runner.moves)

let test_failure_and_recovery_event () =
  let events =
    [
      { Runner.at = 500.0; action = Runner.Fail 3 };
      { Runner.at = 1100.0; action = Runner.Recover 3 };
    ]
  in
  let r =
    Runner.run scenario (Scenario.Anu Placement.Anu.default_config)
      ~trace:small_trace ~events ()
  in
  check_int "completes" r.Runner.submitted r.Runner.completed;
  let series = List.assoc 3 r.Runner.server_series in
  let served_after_recovery =
    List.fold_left
      (fun acc p ->
        if p.Desim.Timeseries.bucket_start >= 1200.0 then
          acc + p.Desim.Timeseries.count
        else acc)
      0 series
  in
  check_bool "recovered server serves again" true (served_after_recovery > 0)

let test_add_server_event () =
  let events = [ { Runner.at = 600.0; action = Runner.Add (9, 9.0) } ] in
  let r =
    Runner.run scenario (Scenario.Anu Placement.Anu.default_config)
      ~trace:small_trace ~events ()
  in
  check_int "completes" r.Runner.submitted r.Runner.completed;
  check_int "six series" 6 (List.length r.Runner.server_series);
  let series = List.assoc 9 r.Runner.server_series in
  let served =
    List.fold_left (fun acc p -> acc + p.Desim.Timeseries.count) 0 series
  in
  check_bool "new server takes load" true (served > 0)

let test_set_speed_event () =
  let events = [ { Runner.at = 200.0; action = Runner.Set_speed (0, 50.0) } ] in
  let r =
    Runner.run scenario (Scenario.Anu Placement.Anu.default_config)
      ~trace:small_trace ~events ()
  in
  check_int "completes" r.Runner.submitted r.Runner.completed

let test_summary_helpers () =
  let r =
    Runner.run scenario Scenario.Round_robin ~trace:small_trace ()
  in
  let imb = Runner.converged_imbalance r ~from_:600.0 in
  check_bool "imbalance >= 1" true (imb >= 1.0);
  let m = Runner.mean_after r ~from_:600.0 in
  check_bool "mean positive" true (m > 0.0)

let test_anu_beats_static_on_heterogeneous_cluster () =
  (* The headline claim, in miniature: on a skewed workload over
     heterogeneous servers, ANU's converged latency beats round-robin
     and lands within a modest factor of prescient. *)
  let trace =
    Workload.Dfs_like.generate
      { Workload.Dfs_like.default_config with Workload.Dfs_like.requests = 30_000 }
  in
  let run spec = Runner.run scenario spec ~trace () in
  let rr = run Scenario.Round_robin in
  let anu = run (Scenario.Anu Placement.Anu.default_config) in
  let presc = run Scenario.Prescient in
  let late r = Runner.mean_after r ~from_:1800.0 in
  check_bool "anu beats round-robin after convergence" true
    (late anu < late rr);
  check_bool "anu within 5x of prescient" true
    (late anu < 5.0 *. late presc)

let suite =
  [
    Alcotest.test_case "all policies complete" `Slow test_all_policies_complete;
    Alcotest.test_case "deterministic repeat" `Slow test_deterministic_repeat;
    Alcotest.test_case "static policies never move" `Slow
      test_static_policies_never_move;
    Alcotest.test_case "reconfig rounds" `Slow test_reconfig_rounds_counted;
    Alcotest.test_case "series cover duration" `Slow test_series_cover_duration;
    Alcotest.test_case "failure event" `Slow test_failure_event;
    Alcotest.test_case "failure and recovery" `Slow test_failure_and_recovery_event;
    Alcotest.test_case "add server event" `Slow test_add_server_event;
    Alcotest.test_case "set speed event" `Slow test_set_speed_event;
    Alcotest.test_case "summary helpers" `Slow test_summary_helpers;
    Alcotest.test_case "anu beats static" `Slow
      test_anu_beats_static_on_heterogeneous_cluster;
  ]
