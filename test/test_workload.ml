(* Workload: trace structure, generators' calibration targets,
   serialization. *)

open Workload

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float eps = Alcotest.(check (float eps))

let record time file_set op demand =
  {
    Trace.time;
    request = { Sharedfs.Request.op; file_set; path_hash = 0; client = 0 };
    demand;
  }

(* --- Trace --- *)

let test_trace_sorts_records () =
  let t =
    Trace.create ~duration:10.0
      [
        record 5.0 "b" Sharedfs.Request.Stat 1.0;
        record 1.0 "a" Sharedfs.Request.Stat 1.0;
        record 3.0 "a" Sharedfs.Request.Stat 1.0;
      ]
  in
  let times = Array.to_list (Array.map (fun r -> r.Trace.time) (Trace.records t)) in
  Alcotest.(check (list (float 0.0))) "sorted" [ 1.0; 3.0; 5.0 ] times;
  check_int "length" 3 (Trace.length t);
  Alcotest.(check (list string)) "file sets in appearance order" [ "a"; "b" ]
    (Trace.file_sets t)

let test_trace_validation () =
  Alcotest.check_raises "late record"
    (Invalid_argument "Trace.create: record at 11 outside [0, 10]") (fun () ->
      ignore
        (Trace.create ~duration:10.0
           [ record 11.0 "a" Sharedfs.Request.Stat 1.0 ]));
  Alcotest.check_raises "bad demand"
    (Invalid_argument "Trace.create: non-positive demand") (fun () ->
      ignore
        (Trace.create ~duration:10.0 [ record 1.0 "a" Sharedfs.Request.Stat 0.0 ]))

let test_window_demand () =
  let t =
    Trace.create ~duration:10.0
      [
        record 1.0 "a" Sharedfs.Request.Open_file 2.0;
        record 2.0 "a" Sharedfs.Request.Open_file 2.0;
        record 5.0 "b" Sharedfs.Request.Open_file 4.0;
        record 9.0 "a" Sharedfs.Request.Open_file 2.0;
      ]
  in
  (* Open factor is 1.0, so effective demand = raw demand. *)
  let w = Trace.window_demand t ~lo:0.0 ~hi:5.0 in
  Alcotest.(check (list (pair string (float 1e-9)))) "first window"
    [ ("a", 4.0) ] w;
  let w = Trace.window_demand t ~lo:5.0 ~hi:10.0 in
  Alcotest.(check (list (pair string (float 1e-9)))) "second window"
    [ ("a", 2.0); ("b", 4.0) ] w

let test_counts_and_skew () =
  let t =
    Trace.create ~duration:10.0
      [
        record 1.0 "a" Sharedfs.Request.Stat 1.0;
        record 2.0 "a" Sharedfs.Request.Stat 1.0;
        record 3.0 "a" Sharedfs.Request.Stat 1.0;
        record 4.0 "b" Sharedfs.Request.Stat 1.0;
      ]
  in
  Alcotest.(check (list (pair string int))) "counts" [ ("a", 3); ("b", 1) ]
    (Trace.counts_by_file_set t);
  check_float 1e-9 "skew" 3.0 (Trace.activity_skew t)

let test_merge () =
  let a = Trace.create ~duration:5.0 [ record 1.0 "a" Sharedfs.Request.Stat 1.0 ] in
  let b = Trace.create ~duration:8.0 [ record 0.5 "b" Sharedfs.Request.Stat 1.0 ] in
  let m = Trace.merge a b in
  check_int "records" 2 (Trace.length m);
  check_float 1e-9 "duration is max" 8.0 (Trace.duration m);
  let first = (Trace.records m).(0) in
  check_float 1e-9 "resorted" 0.5 first.Trace.time

let test_op_mix_sums_to_one () =
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 Trace.op_mix in
  check_float 1e-9 "mass" 1.0 total

let test_sample_op_frequencies () =
  let rng = Desim.Rng.create 31 in
  let stats = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Trace.sample_op rng = Sharedfs.Request.Stat then incr stats
  done;
  check_float 0.02 "stat fraction" 0.38 (float_of_int !stats /. float_of_int n)

(* --- Synthetic --- *)

let small_synth =
  { Synthetic.default_config with Synthetic.file_sets = 50; requests = 5_000 }

let test_synthetic_counts () =
  let t = Synthetic.generate small_synth in
  check_int "exact request count" 5_000 (Trace.length t);
  check_float 1e-9 "duration" 10_000.0 (Trace.duration t);
  check_bool "most sets appear" true (List.length (Trace.file_sets t) > 40)

let test_synthetic_deterministic () =
  let a = Synthetic.generate small_synth in
  let b = Synthetic.generate small_synth in
  check_bool "same trace" true
    (Trace.counts_by_file_set a = Trace.counts_by_file_set b)

let test_synthetic_weights_normalized () =
  let w = Synthetic.weights small_synth in
  check_int "one per set" 50 (List.length w);
  let total = List.fold_left (fun acc (_, x) -> acc +. x) 0.0 w in
  check_float 1e-9 "normalized" 1.0 total

let test_synthetic_cubic_skew () =
  (* Cubic weights: the top set should dominate the bottom set by a
     large factor. *)
  let t =
    Synthetic.generate
      { small_synth with Synthetic.requests = 50_000 }
  in
  check_bool "heavy skew" true (Trace.activity_skew t > 10.0)

let test_synthetic_validation () =
  Alcotest.check_raises "requests"
    (Invalid_argument "Synthetic.generate: requests must be positive")
    (fun () ->
      ignore (Synthetic.generate { small_synth with Synthetic.requests = 0 }))

(* --- Dfs_like --- *)

let small_dfs =
  { Dfs_like.default_config with Dfs_like.requests = 20_000 }

let test_dfs_counts () =
  let t = Dfs_like.generate small_dfs in
  check_int "exact request count" 20_000 (Trace.length t);
  check_int "21 file sets" 21 (List.length (Trace.file_sets t));
  check_float 1e-9 "one hour" 3600.0 (Trace.duration t)

let test_dfs_skew_matches_paper () =
  (* The most active set must exceed the least by roughly the
     configured 120x (paper: "more than one hundred times"). *)
  let t = Dfs_like.generate { small_dfs with Dfs_like.requests = 112_590 } in
  let skew = Trace.activity_skew t in
  check_bool "paper skew" true (skew > 60.0 && skew < 400.0)

let test_dfs_base_weights () =
  let w = Dfs_like.base_weights small_dfs in
  check_int "21 weights" 21 (List.length w);
  let values = List.map snd w in
  let mx = List.fold_left Float.max 0.0 values in
  let mn = List.fold_left Float.min 1.0 values in
  check_float 1e-6 "ratio is skew_ratio" 120.0 (mx /. mn)

let test_dfs_default_matches_paper_scale () =
  let c = Dfs_like.default_config in
  check_int "112,590 requests" 112_590 c.Dfs_like.requests;
  check_int "21 file sets" 21 c.Dfs_like.file_sets;
  check_float 1e-9 "one hour" 3600.0 c.Dfs_like.duration

(* --- Trace_io --- *)

let test_io_round_trip () =
  let t = Synthetic.generate { small_synth with Synthetic.requests = 500 } in
  let t' = Trace_io.of_string (Trace_io.to_string t) in
  check_int "length" (Trace.length t) (Trace.length t');
  check_float 1e-6 "duration" (Trace.duration t) (Trace.duration t');
  check_bool "counts survive" true
    (Trace.counts_by_file_set t = Trace.counts_by_file_set t');
  check_float 1e-3 "demand survives" (Trace.total_demand t)
    (Trace.total_demand t')

let test_io_parse_errors () =
  (try
     ignore (Trace_io.of_string "1.0 fs open\n");
     Alcotest.fail "expected failure"
   with Failure msg ->
     check_bool "line number" true
       (String.length msg > 0 && String.contains msg '1'));
  try
    ignore (Trace_io.of_string "x fs open 3 0.5\n");
    Alcotest.fail "expected failure"
  with Failure _ -> ()

let test_io_comments_and_blank_lines () =
  let t =
    Trace_io.of_string
      "# duration: 100.0\n\n# a comment\n1.5 fs-a open 7 0.25\n"
  in
  check_int "one record" 1 (Trace.length t);
  check_float 1e-9 "duration from header" 100.0 (Trace.duration t)

let test_io_duration_inferred () =
  let t = Trace_io.of_string "2.5 fs-a stat 1 0.5\n7.5 fs-b stat 2 0.5\n" in
  check_float 1e-9 "inferred" 7.5 (Trace.duration t)

let test_io_file_round_trip () =
  let t = Synthetic.generate { small_synth with Synthetic.requests = 100 } in
  let path = Filename.temp_file "shdisk_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_io.save t ~path;
      let t' = Trace_io.load ~path in
      check_int "length" (Trace.length t) (Trace.length t'))

let test_op_string_round_trip () =
  List.iter
    (fun op ->
      match Trace_io.op_of_string (Trace_io.op_to_string op) with
      | Some op' -> check_bool "round trip" true (op = op')
      | None -> Alcotest.fail "op did not round-trip")
    Sharedfs.Request.all_ops

let suite =
  [
    Alcotest.test_case "trace sorts" `Quick test_trace_sorts_records;
    Alcotest.test_case "trace validation" `Quick test_trace_validation;
    Alcotest.test_case "window demand" `Quick test_window_demand;
    Alcotest.test_case "counts and skew" `Quick test_counts_and_skew;
    Alcotest.test_case "merge" `Quick test_merge;
    Alcotest.test_case "op mix mass" `Quick test_op_mix_sums_to_one;
    Alcotest.test_case "op frequencies" `Slow test_sample_op_frequencies;
    Alcotest.test_case "synthetic counts" `Quick test_synthetic_counts;
    Alcotest.test_case "synthetic deterministic" `Quick test_synthetic_deterministic;
    Alcotest.test_case "synthetic weights" `Quick test_synthetic_weights_normalized;
    Alcotest.test_case "synthetic cubic skew" `Slow test_synthetic_cubic_skew;
    Alcotest.test_case "synthetic validation" `Quick test_synthetic_validation;
    Alcotest.test_case "dfs counts" `Quick test_dfs_counts;
    Alcotest.test_case "dfs skew" `Slow test_dfs_skew_matches_paper;
    Alcotest.test_case "dfs base weights" `Quick test_dfs_base_weights;
    Alcotest.test_case "dfs paper scale" `Quick test_dfs_default_matches_paper_scale;
    Alcotest.test_case "io round trip" `Quick test_io_round_trip;
    Alcotest.test_case "io parse errors" `Quick test_io_parse_errors;
    Alcotest.test_case "io comments" `Quick test_io_comments_and_blank_lines;
    Alcotest.test_case "io duration inferred" `Quick test_io_duration_inferred;
    Alcotest.test_case "io file round trip" `Quick test_io_file_round_trip;
    Alcotest.test_case "op string round trip" `Quick test_op_string_round_trip;
  ]
