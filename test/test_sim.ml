(* Sim: event execution order, cancellation, run_until semantics. *)

open Desim

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)

let test_clock_starts_at_zero () =
  let sim = Sim.create () in
  check_float "now" 0.0 (Sim.now sim);
  check_int "pending" 0 (Sim.pending sim)

let test_events_fire_in_order () =
  let sim = Sim.create () in
  let log = ref [] in
  let note tag () = log := (tag, Sim.now sim) :: !log in
  let (_ : Sim.handle) = Sim.schedule_at sim ~time:2.0 (note "b") in
  let (_ : Sim.handle) = Sim.schedule_at sim ~time:1.0 (note "a") in
  let (_ : Sim.handle) = Sim.schedule_at sim ~time:3.0 (note "c") in
  Sim.run sim;
  Alcotest.(check (list (pair string (float 0.0))))
    "order and times"
    [ ("a", 1.0); ("b", 2.0); ("c", 3.0) ]
    (List.rev !log);
  check_float "clock at last event" 3.0 (Sim.now sim)

let test_same_time_fifo () =
  let sim = Sim.create () in
  let log = ref [] in
  List.iter
    (fun tag ->
      ignore (Sim.schedule_at sim ~time:1.0 (fun () -> log := tag :: !log)))
    [ 1; 2; 3 ];
  Sim.run sim;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !log)

let test_relative_delay () =
  let sim = Sim.create () in
  let fired = ref 0.0 in
  let (_ : Sim.handle) =
    Sim.schedule sim ~delay:5.0 (fun () -> fired := Sim.now sim)
  in
  Sim.run sim;
  check_float "fired at" 5.0 !fired

let test_past_event_rejected () =
  let sim = Sim.create () in
  let (_ : Sim.handle) = Sim.schedule_at sim ~time:10.0 (fun () -> ()) in
  Sim.run sim;
  (try
     ignore (Sim.schedule_at sim ~time:5.0 (fun () -> ()));
     Alcotest.fail "expected Past_event"
   with Sim.Past_event { now; requested } ->
     check_float "now" 10.0 now;
     check_float "requested" 5.0 requested)

let test_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let h = Sim.schedule_at sim ~time:1.0 (fun () -> fired := true) in
  check_int "pending before" 1 (Sim.pending sim);
  Sim.cancel sim h;
  check_int "pending after cancel" 0 (Sim.pending sim);
  check_bool "cancelled" true (Sim.cancelled sim h);
  Sim.run sim;
  check_bool "not fired" false !fired;
  (* Cancelling twice is a no-op. *)
  Sim.cancel sim h;
  check_int "pending stable" 0 (Sim.pending sim)

let test_events_scheduled_during_execution () =
  let sim = Sim.create () in
  let log = ref [] in
  let (_ : Sim.handle) =
    Sim.schedule_at sim ~time:1.0 (fun () ->
        log := "outer" :: !log;
        ignore
          (Sim.schedule sim ~delay:1.0 (fun () -> log := "inner" :: !log)))
  in
  Sim.run sim;
  Alcotest.(check (list string)) "chain" [ "outer"; "inner" ] (List.rev !log);
  check_float "final clock" 2.0 (Sim.now sim)

let test_run_until () =
  let sim = Sim.create () in
  let fired = ref [] in
  List.iter
    (fun t ->
      ignore (Sim.schedule_at sim ~time:t (fun () -> fired := t :: !fired)))
    [ 1.0; 2.0; 3.0; 4.0 ];
  Sim.run_until sim ~time:2.5;
  Alcotest.(check (list (float 0.0))) "fired" [ 1.0; 2.0 ] (List.rev !fired);
  check_float "clock advanced to bound" 2.5 (Sim.now sim);
  check_int "pending" 2 (Sim.pending sim);
  Sim.run sim;
  check_int "drained" 0 (Sim.pending sim)

let test_run_until_with_cancelled_head () =
  let sim = Sim.create () in
  let fired = ref false in
  let h = Sim.schedule_at sim ~time:1.0 (fun () -> ()) in
  let (_ : Sim.handle) =
    Sim.schedule_at sim ~time:5.0 (fun () -> fired := true)
  in
  Sim.cancel sim h;
  (* The cancelled event at t=1 must not cause the t=5 event to fire
     when running only until t=2. *)
  Sim.run_until sim ~time:2.0;
  check_bool "later event untouched" false !fired;
  check_float "clock" 2.0 (Sim.now sim)

(* Regression: a tombstone sitting at the heap head must be invisible
   to every consumer of "what fires next".  The hot-path scheduler
   leaves cancelled events in place until they bubble up, so peeking
   paths (next_event_time, the step source-vs-heap merge) have to
   purge first or they would compare against a time that will never
   fire. *)
let test_tombstone_at_head_invisible () =
  let sim = Sim.create () in
  let log = ref [] in
  let h1 = Sim.schedule_at sim ~time:1.0 (fun () -> log := 1.0 :: !log) in
  let (_ : Sim.handle) =
    Sim.schedule_at sim ~time:3.0 (fun () -> log := 3.0 :: !log)
  in
  Sim.cancel sim h1;
  (* The dead head must not masquerade as the next event. *)
  check_float "next_event_time skips tombstone" 3.0 (Sim.next_event_time sim);
  (* The step source/heap merge must compare against the live head:
     a source event at t=2 fires before the t=3 heap event even though
     the (dead) heap head carried t=1. *)
  let source_next = [| 2.0 |] in
  Sim.set_source sim ~next:source_next
    ~fire:(fun () ->
      log := 2.0 :: !log;
      source_next.(0) <- Float.infinity);
  Sim.run sim;
  Alcotest.(check (list (float 0.0)))
    "source beat the live head; tombstone never fired" [ 2.0; 3.0 ]
    (List.rev !log);
  check_int "tombstones are not counted as fired" 2 (Sim.events_fired sim)

let test_tombstones_all_dead_reports_idle () =
  let sim = Sim.create () in
  let handles =
    List.init 5 (fun i ->
        Sim.schedule_at sim ~time:(float_of_int (i + 1)) (fun () -> ()))
  in
  List.iter (Sim.cancel sim) handles;
  check_float "idle" Float.infinity (Sim.next_event_time sim);
  check_bool "step finds nothing" false (Sim.step sim);
  check_int "nothing fired" 0 (Sim.events_fired sim)

let test_cancel_storm_with_compaction_keeps_order () =
  (* Enough cancellations to cross the compaction threshold, with the
     head repeatedly among the dead: survivors still fire in (time,
     seq) order and the fired counter sees only them. *)
  let sim = Sim.create () in
  let log = ref [] in
  let handles =
    Array.init 256 (fun i ->
        let t = float_of_int (i mod 16) in
        Sim.schedule_at sim ~time:t (fun () -> log := (t, i) :: !log))
  in
  Array.iteri
    (fun i h -> if i mod 4 <> 3 then Sim.cancel sim h)
    handles;
  Sim.run sim;
  let fired = List.rev !log in
  check_int "only survivors fired" 64 (List.length fired);
  check_int "fired counter matches" 64 (Sim.events_fired sim);
  let expect =
    List.filter (fun i -> i mod 4 = 3) (List.init 256 Fun.id)
    |> List.map (fun i -> (float_of_int (i mod 16), i))
    |> List.stable_sort (fun (t1, _) (t2, _) -> Float.compare t1 t2)
  in
  check_bool "survivor order is (time, insertion) sorted" true (fired = expect)

let test_events_fired_counter () =
  let sim = Sim.create () in
  for i = 1 to 5 do
    ignore (Sim.schedule_at sim ~time:(float_of_int i) (fun () -> ()))
  done;
  Sim.run sim;
  check_int "fired" 5 (Sim.events_fired sim)

let test_step () =
  let sim = Sim.create () in
  let (_ : Sim.handle) = Sim.schedule_at sim ~time:1.0 (fun () -> ()) in
  check_bool "step true" true (Sim.step sim);
  check_bool "step false when empty" false (Sim.step sim)

let test_on_event_hook () =
  let sim = Sim.create () in
  let seen = ref [] in
  Sim.set_on_event sim (fun time -> seen := time :: !seen);
  List.iter
    (fun t -> ignore (Sim.schedule_at sim ~time:t (fun () -> ())))
    [ 2.0; 1.0; 3.0 ];
  Sim.run sim;
  Alcotest.(check (list (float 0.0)))
    "hook saw every event in order" [ 1.0; 2.0; 3.0 ] (List.rev !seen);
  (* Clearing stops further callbacks. *)
  Sim.clear_on_event sim;
  let (_ : Sim.handle) = Sim.schedule_at sim ~time:4.0 (fun () -> ()) in
  Sim.run sim;
  check_int "no extra callbacks" 3 (List.length !seen)

let test_run_profiled () =
  let sim = Sim.create () in
  for i = 1 to 100 do
    ignore (Sim.schedule_at sim ~time:(float_of_int i) (fun () -> ()))
  done;
  let profile = Sim.run_profiled sim in
  check_int "fired" 100 profile.Sim.fired;
  check_bool "wall clock non-negative" true (profile.Sim.wall_seconds >= 0.0);
  check_bool "rate non-negative" true (profile.Sim.events_per_second >= 0.0)

let suite =
  [
    Alcotest.test_case "clock starts at zero" `Quick test_clock_starts_at_zero;
    Alcotest.test_case "events fire in order" `Quick test_events_fire_in_order;
    Alcotest.test_case "same-time FIFO" `Quick test_same_time_fifo;
    Alcotest.test_case "relative delay" `Quick test_relative_delay;
    Alcotest.test_case "past event rejected" `Quick test_past_event_rejected;
    Alcotest.test_case "cancel" `Quick test_cancel;
    Alcotest.test_case "schedule during execution" `Quick
      test_events_scheduled_during_execution;
    Alcotest.test_case "run_until" `Quick test_run_until;
    Alcotest.test_case "run_until skips cancelled head" `Quick
      test_run_until_with_cancelled_head;
    Alcotest.test_case "tombstone at head is invisible" `Quick
      test_tombstone_at_head_invisible;
    Alcotest.test_case "all-dead heap reports idle" `Quick
      test_tombstones_all_dead_reports_idle;
    Alcotest.test_case "cancel storm + compaction keeps order" `Quick
      test_cancel_storm_with_compaction_keeps_order;
    Alcotest.test_case "events_fired counter" `Quick test_events_fired_counter;
    Alcotest.test_case "step" `Quick test_step;
    Alcotest.test_case "on_event hook" `Quick test_on_event_hook;
    Alcotest.test_case "run_profiled" `Quick test_run_profiled;
  ]
