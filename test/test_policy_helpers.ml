(* Policy-layer helpers: assignment diffs, per-server counts, scenario
   naming, averaging methods. *)

open Placement
module Id = Sharedfs.Server_id

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_diff_assignments () =
  let before =
    [ ("a", Id.of_int 0); ("b", Id.of_int 1); ("c", Id.of_int 2) ]
  in
  let after =
    [ ("a", Id.of_int 0); ("b", Id.of_int 2); ("c", Id.of_int 2);
      ("d", Id.of_int 0) ]
  in
  let moved = Policy.diff_assignments ~before ~after in
  (* Only b moved; d is new (not a move); a and c unchanged. *)
  check_int "one move" 1 (List.length moved);
  (match moved with
  | [ (name, src, dst) ] ->
    Alcotest.(check string) "name" "b" name;
    check_int "src" 1 (Id.to_int src);
    check_int "dst" 2 (Id.to_int dst)
  | _ -> Alcotest.fail "expected exactly one diff")

let test_counts_by_server () =
  let assignment =
    [ ("a", Id.of_int 1); ("b", Id.of_int 0); ("c", Id.of_int 1);
      ("d", Id.of_int 1) ]
  in
  Alcotest.(check (list (pair int int)))
    "counts in id order"
    [ (0, 1); (1, 3) ]
    (List.map
       (fun (id, c) -> (Id.to_int id, c))
       (Policy.counts_by_server assignment))

let test_assignment_of () =
  let family = Hashlib.Hash_family.create ~seed:12 in
  let t = Simple_random.create ~family ~servers:[ Id.of_int 0; Id.of_int 1 ] in
  let p = Simple_random.policy t in
  let names = [ "x"; "y"; "z" ] in
  let assignment = Policy.assignment_of p names in
  check_int "one entry per name" 3 (List.length assignment);
  List.iter
    (fun (n, id) -> check_bool "consistent" true (Id.equal id (p.Policy.locate n)))
    assignment

let test_scenario_policy_names () =
  let open Experiments.Scenario in
  Alcotest.(check string) "simple" "simple-random" (policy_name Simple_random);
  Alcotest.(check string) "rr" "round-robin" (policy_name Round_robin);
  Alcotest.(check string) "prescient" "prescient" (policy_name Prescient);
  Alcotest.(check string) "anu" "anu" (policy_name (Anu Anu.default_config));
  Alcotest.(check string) "gossip" "anu-gossip"
    (policy_name (Gossip Gossip.default_config));
  Alcotest.(check string) "ch" "consistent-hash" (policy_name Consistent_hash);
  Alcotest.(check string) "custom name" "anu-test"
    (policy_name (anu_with Heuristics.none ~name:"anu-test"))

let test_average_methods () =
  let report id latency requests =
    {
      Sharedfs.Delegate.server = Id.of_int id;
      speed_hint = 1.0;
      report =
        { Sharedfs.Server.mean_latency = latency; max_latency = latency; requests };
    }
  in
  let reports = [ report 0 10.0 1; report 1 20.0 1; report 2 90.0 8 ] in
  Alcotest.(check (float 1e-9))
    "weighted mean" 75.0
    (Average.compute Average.Weighted_mean reports);
  Alcotest.(check (float 1e-9))
    "median" 20.0
    (Average.compute Average.Median reports);
  check_bool "names differ" true
    (Average.method_name Average.Weighted_mean
    <> Average.method_name Average.Median)

let test_report_row_capping () =
  let figure = Experiments.Figures.fig7 ~quick:true () in
  let short =
    Format.asprintf "%a" (Experiments.Report.pp_figure ~max_minutes:4.0) figure
  in
  let long =
    Format.asprintf "%a" (Experiments.Report.pp_figure ~max_minutes:60.0) figure
  in
  check_bool "capping shortens output" true
    (String.length short < String.length long)

let suite =
  [
    Alcotest.test_case "diff assignments" `Quick test_diff_assignments;
    Alcotest.test_case "counts by server" `Quick test_counts_by_server;
    Alcotest.test_case "assignment_of" `Quick test_assignment_of;
    Alcotest.test_case "scenario policy names" `Quick test_scenario_policy_names;
    Alcotest.test_case "average methods" `Quick test_average_methods;
    Alcotest.test_case "report row capping" `Slow test_report_row_capping;
  ]
