(* Timeseries: bucketing, gap materialization, error cases. *)

open Desim

let check_int = Alcotest.(check int)
let check_float eps = Alcotest.(check (float eps))

let test_basic_bucketing () =
  let ts = Timeseries.create ~interval:10.0 in
  Timeseries.observe ts ~time:1.0 4.0;
  Timeseries.observe ts ~time:2.0 6.0;
  Timeseries.observe ts ~time:15.0 10.0;
  let points = Timeseries.finish ts ~until:19.9 in
  check_int "buckets" 2 (List.length points);
  (match points with
  | [ p0; p1 ] ->
    check_float 1e-9 "b0 start" 0.0 p0.Timeseries.bucket_start;
    check_float 1e-9 "b0 mean" 5.0 p0.Timeseries.mean;
    check_int "b0 count" 2 p0.Timeseries.count;
    check_float 1e-9 "b0 max" 6.0 p0.Timeseries.max;
    check_float 1e-9 "b1 start" 10.0 p1.Timeseries.bucket_start;
    check_float 1e-9 "b1 mean" 10.0 p1.Timeseries.mean;
    check_int "b1 count" 1 p1.Timeseries.count
  | _ -> Alcotest.fail "expected two points")

let test_empty_gap_buckets () =
  let ts = Timeseries.create ~interval:1.0 in
  Timeseries.observe ts ~time:0.5 1.0;
  Timeseries.observe ts ~time:3.5 2.0;
  let points = Timeseries.finish ts ~until:3.9 in
  check_int "four buckets" 4 (List.length points);
  let counts = List.map (fun p -> p.Timeseries.count) points in
  Alcotest.(check (list int)) "gaps zero" [ 1; 0; 0; 1 ] counts;
  let means = List.map (fun p -> p.Timeseries.mean) points in
  Alcotest.(check (list (float 1e-9))) "gap means zero" [ 1.0; 0.0; 0.0; 2.0 ] means

let test_no_observations () =
  let ts = Timeseries.create ~interval:5.0 in
  let points = Timeseries.finish ts ~until:12.0 in
  check_int "three empty buckets" 3 (List.length points)

let test_observation_before_current_bucket_rejected () =
  let ts = Timeseries.create ~interval:1.0 in
  Timeseries.observe ts ~time:5.5 1.0;
  Alcotest.check_raises "stale"
    (Invalid_argument "Timeseries.observe: observation before current bucket")
    (fun () -> Timeseries.observe ts ~time:4.0 1.0)

let test_same_bucket_out_of_order_ok () =
  let ts = Timeseries.create ~interval:10.0 in
  Timeseries.observe ts ~time:7.0 1.0;
  Timeseries.observe ts ~time:3.0 3.0;
  let points = Timeseries.finish ts ~until:9.0 in
  match points with
  | [ p ] -> check_float 1e-9 "mean" 2.0 p.Timeseries.mean
  | _ -> Alcotest.fail "one bucket expected"

(* An observation exactly on a bucket boundary belongs to the bucket
   it starts (floor semantics), and a [finish] landing exactly on a
   boundary still materializes the bucket that starts there. *)
let test_boundary_observation () =
  let ts = Timeseries.create ~interval:10.0 in
  Timeseries.observe ts ~time:10.0 3.0;
  let points = Timeseries.finish ts ~until:20.0 in
  check_int "three buckets up to the boundary" 3 (List.length points);
  match points with
  | [ p0; p1; p2 ] ->
    check_int "bucket before the boundary is empty" 0 p0.Timeseries.count;
    check_float 1e-9 "boundary observation opens its bucket" 10.0
      p1.Timeseries.bucket_start;
    check_int "boundary observation counted there" 1 p1.Timeseries.count;
    check_float 1e-9 "finish on a boundary materializes that bucket" 20.0
      p2.Timeseries.bucket_start;
    check_int "and it is empty" 0 p2.Timeseries.count
  | _ -> Alcotest.fail "expected three points"

(* A long sparse gap materializes every intermediate bucket as an
   explicit zero — consumers can difference neighbouring buckets
   without re-deriving the time axis. *)
let test_sparse_long_gap () =
  let ts = Timeseries.create ~interval:1.0 in
  Timeseries.observe ts ~time:0.5 1.0;
  Timeseries.observe ts ~time:100.5 2.0;
  let points = Timeseries.finish ts ~until:100.5 in
  check_int "101 buckets" 101 (List.length points);
  let nonzero =
    List.filter_map
      (fun p ->
        if p.Timeseries.count > 0 then Some p.Timeseries.bucket_start
        else None)
      points
  in
  Alcotest.(check (list (float 1e-9))) "only the endpoints carry data"
    [ 0.0; 100.0 ] nonzero

(* Once a later bucket opens, anything before it is rejected — even an
   observation sitting exactly on a closed bucket's boundary. *)
let test_boundary_out_of_order_rejected () =
  let ts = Timeseries.create ~interval:10.0 in
  Timeseries.observe ts ~time:10.0 1.0;
  Alcotest.check_raises "closed boundary stale"
    (Invalid_argument "Timeseries.observe: observation before current bucket")
    (fun () -> Timeseries.observe ts ~time:9.999 1.0)

let test_invalid_interval () =
  Alcotest.check_raises "zero"
    (Invalid_argument "Timeseries.create: interval must be positive") (fun () ->
      ignore (Timeseries.create ~interval:0.0))

let test_bucket_starts_are_multiples () =
  let ts = Timeseries.create ~interval:2.5 in
  Timeseries.observe ts ~time:6.0 1.0;
  let points = Timeseries.finish ts ~until:6.0 in
  let starts = List.map (fun p -> p.Timeseries.bucket_start) points in
  Alcotest.(check (list (float 1e-9))) "starts" [ 0.0; 2.5; 5.0 ] starts

let suite =
  [
    Alcotest.test_case "basic bucketing" `Quick test_basic_bucketing;
    Alcotest.test_case "gap buckets" `Quick test_empty_gap_buckets;
    Alcotest.test_case "no observations" `Quick test_no_observations;
    Alcotest.test_case "stale observation rejected" `Quick
      test_observation_before_current_bucket_rejected;
    Alcotest.test_case "same bucket out of order" `Quick
      test_same_bucket_out_of_order_ok;
    Alcotest.test_case "boundary observation" `Quick test_boundary_observation;
    Alcotest.test_case "sparse long gap" `Quick test_sparse_long_gap;
    Alcotest.test_case "boundary out of order rejected" `Quick
      test_boundary_out_of_order_rejected;
    Alcotest.test_case "invalid interval" `Quick test_invalid_interval;
    Alcotest.test_case "bucket starts" `Quick test_bucket_starts_are_multiples;
  ]
