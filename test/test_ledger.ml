(* The write-ahead ownership ledger: codec, torn-write detection,
   roll-forward/roll-back recovery, repair, and replay idempotence. *)

open Sharedfs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ops =
  [
    Ledger.Assign { file_set = "a"; owner = 0 };
    Ledger.Move { file_set = "b"; src = Some 1; dst = 2 };
    Ledger.Move { file_set = "orphan-adopt"; src = None; dst = 0 };
    Ledger.Orphan { file_set = "c" };
    Ledger.Member { server = 3; change = "fence-cluster" };
    Ledger.Epoch { holder = 1 };
    Ledger.Noop;
  ]

let test_codec_roundtrip () =
  List.iteri
    (fun i op ->
      List.iter
        (fun phase ->
          let r = { Ledger.seq = i; epoch = i * 7; phase; op } in
          match Ledger.decode (Ledger.encode r) with
          | `Ok r' -> check_bool "decode inverts encode" true (r = r')
          | `Torn ->
            Alcotest.failf "record %a decoded as torn" Ledger.pp_record r)
        [ Ledger.Intent; Ledger.Commit ])
    ops

let test_codec_rejects_corruption () =
  let r =
    {
      Ledger.seq = 4;
      epoch = 2;
      phase = Ledger.Commit;
      op = Ledger.Assign { file_set = "fs-x"; owner = 1 };
    }
  in
  let enc = Ledger.encode r in
  (* Any truncated prefix — the torn-write model — fails the checksum. *)
  for len = 0 to String.length enc - 1 do
    match Ledger.decode (String.sub enc 0 len) with
    | `Torn -> ()
    | `Ok _ -> Alcotest.failf "prefix of length %d decoded" len
  done;
  (* A flipped payload byte fails too. *)
  let flipped = Bytes.of_string enc in
  Bytes.set flipped
    (String.length enc - 1)
    (Char.chr (Char.code enc.[String.length enc - 1] lxor 1));
  check_bool "bit flip detected" true
    (Ledger.decode (Bytes.to_string flipped) = `Torn)

let test_roll_forward_and_back () =
  let disk = Shared_disk.create () in
  let t = Ledger.attach disk in
  let app phase op =
    match Ledger.append t phase op with
    | `Appended _ -> ()
    | `Fenced -> Alcotest.fail "trusted append fenced"
  in
  app Ledger.Commit (Ledger.Assign { file_set = "a"; owner = 0 });
  app Ledger.Commit (Ledger.Assign { file_set = "b"; owner = 1 });
  (* A completed move: intent then commit — rolls forward to dst. *)
  app Ledger.Intent (Ledger.Move { file_set = "a"; src = Some 0; dst = 2 });
  app Ledger.Commit (Ledger.Move { file_set = "a"; src = Some 0; dst = 2 });
  (* An interrupted move: intent only — rolls back to orphaned. *)
  app Ledger.Intent (Ledger.Move { file_set = "b"; src = Some 1; dst = 2 });
  (* An explicit orphan. *)
  app Ledger.Commit (Ledger.Assign { file_set = "c"; owner = 1 });
  app Ledger.Commit (Ledger.Orphan { file_set = "c" });
  let rep = Ledger.replay disk in
  check_int "seven records" 7 (List.length rep.Ledger.records);
  check_int "nothing torn" 0 (List.length rep.Ledger.torn_seqs);
  let owned, orphaned = Ledger.recovered_assignment rep in
  check_bool "committed move rolls forward" true
    (List.assoc_opt "a" owned = Some 2);
  check_bool "pending intent rolls back to orphaned" true
    (List.mem "b" orphaned);
  check_bool "orphaned set awaits re-placement" true (List.mem "c" orphaned);
  check_bool "orphans are not owned" true
    (List.assoc_opt "b" owned = None && List.assoc_opt "c" owned = None)

let test_attach_resumes_sequence () =
  let disk = Shared_disk.create () in
  let t1 = Ledger.attach disk in
  let app t phase op =
    match Ledger.append t phase op with
    | `Appended seq -> seq
    | `Fenced -> Alcotest.fail "trusted append fenced"
  in
  check_int "first seq" 0
    (app t1 Ledger.Commit (Ledger.Assign { file_set = "a"; owner = 0 }));
  check_int "second seq" 1
    (app t1 Ledger.Commit (Ledger.Assign { file_set = "b"; owner = 1 }));
  (* A second handle over the same disk — the whole-cluster restart —
     resumes numbering after the survivors. *)
  let t2 = Ledger.attach disk in
  check_int "restart resumes at 2" 2 (Ledger.next_seq t2);
  check_int "restarted handle appends at 2" 2
    (app t2 Ledger.Commit (Ledger.Orphan { file_set = "a" }));
  let rep = Ledger.replay disk in
  check_int "all three visible" 3 (List.length rep.Ledger.records)

let test_torn_write_detected_and_repaired () =
  let disk = Shared_disk.create () in
  let t = Ledger.attach disk in
  let seen = ref [] in
  Ledger.set_on_torn t (fun ~seq -> seen := seq :: !seen);
  Ledger.arm_torn t ~nth:1;
  let app phase op =
    match Ledger.append t phase op with
    | `Appended _ -> ()
    | `Fenced -> Alcotest.fail "trusted append fenced"
  in
  app Ledger.Commit (Ledger.Assign { file_set = "a"; owner = 0 });
  app Ledger.Commit (Ledger.Assign { file_set = "b"; owner = 1 });
  app Ledger.Commit (Ledger.Assign { file_set = "c"; owner = 2 });
  check_int "hook saw the torn seq" 1 (List.hd !seen);
  check_int "one torn write counted" 1 (Ledger.torn_writes t);
  let rep = Ledger.replay disk in
  check_bool "replay flags the torn record" true (rep.Ledger.torn_seqs = [ 1 ]);
  check_int "survivors still replay" 2 (List.length rep.Ledger.records);
  check_bool "torn slot stays occupied" true (rep.Ledger.next_seq = 3);
  (* Repair rewrites the slot from the mirror; replay then sees the
     record the writer believed it wrote. *)
  check_int "one block repaired" 1 (Ledger.repair t);
  let rep' = Ledger.replay disk in
  check_int "nothing torn after repair" 0 (List.length rep'.Ledger.torn_seqs);
  check_bool "record restored verbatim" true
    (List.exists
       (fun (r : Ledger.record) ->
         r.Ledger.seq = 1
         && r.Ledger.op = Ledger.Assign { file_set = "b"; owner = 1 })
       rep'.Ledger.records)

let test_torn_without_mirror_tombstoned () =
  (* A torn record with no surviving mirror (whole-cluster restart):
     repair excises it with a Noop tombstone rather than inventing
     state. *)
  let disk = Shared_disk.create () in
  let t1 = Ledger.attach disk in
  Ledger.arm_torn t1 ~nth:0;
  (match Ledger.append t1 Ledger.Commit (Ledger.Orphan { file_set = "z" }) with
  | `Appended _ -> ()
  | `Fenced -> Alcotest.fail "trusted append fenced");
  (* Fresh handle: attach skips the torn record, so no mirror entry. *)
  let t2 = Ledger.attach disk in
  check_int "tombstone written" 1 (Ledger.repair t2);
  let rep = Ledger.replay disk in
  check_int "log is clean" 0 (List.length rep.Ledger.torn_seqs);
  check_bool "slot holds a Noop" true
    (List.exists
       (fun (r : Ledger.record) -> r.Ledger.seq = 0 && r.Ledger.op = Ledger.Noop)
       rep.Ledger.records)

let test_fenced_writer_rejected () =
  let disk = Shared_disk.create () in
  let t = Ledger.attach disk in
  Shared_disk.fence disk ~server:3;
  check_bool "fenced writer cannot append" true
    (Ledger.append t ~writer:3 Ledger.Commit
       (Ledger.Orphan { file_set = "a" })
    = `Fenced);
  check_int "nothing reached the log" 0
    (List.length (Ledger.replay disk).Ledger.records);
  Shared_disk.unfence disk ~server:3;
  check_bool "unfenced writer appends" true
    (Ledger.append t ~writer:3 Ledger.Commit
       (Ledger.Orphan { file_set = "a" })
    <> `Fenced)

let test_block_ranges_disjoint () =
  (* Ledger blocks live strictly below the control range, which lives
     strictly below every metadata/move block (non-negative). *)
  check_bool "lease is a control block" true
    (Ledger.lease_block < 0 && Ledger.lease_block > Ledger.block_of_seq 0);
  check_bool "record blocks descend from -16" true
    (Ledger.block_of_seq 0 = -16 && Ledger.block_of_seq 7 = -23)

(* qcheck: replay is idempotent and repair converges, whatever mix of
   appends and torn slots the generator picks. *)
let arb_op =
  QCheck.Gen.(
    let name = map (Printf.sprintf "fs-%02d") (int_bound 15) in
    let server = int_bound 7 in
    oneof
      [
        map2 (fun f o -> Ledger.Assign { file_set = f; owner = o }) name server;
        map3
          (fun f s d -> Ledger.Move { file_set = f; src = Some s; dst = d })
          name server server;
        map (fun f -> Ledger.Orphan { file_set = f }) name;
        map2 (fun s c -> Ledger.Member { server = s; change = c }) server
          (oneofl [ "join"; "leave"; "heal" ]);
        map (fun h -> Ledger.Epoch { holder = h }) server;
      ])

let arb_script =
  QCheck.make
    ~print:(fun (ops, torn) ->
      Printf.sprintf "%d ops, torn=%s" (List.length ops)
        (String.concat "," (List.map string_of_int torn)))
    QCheck.Gen.(
      pair
        (list_size (int_range 1 20)
           (pair arb_op (oneofl [ Ledger.Intent; Ledger.Commit ])))
        (small_list (int_bound 19)))

let prop_replay_idempotent_and_repair_converges =
  QCheck.Test.make ~count:60
    ~name:"ledger: replay idempotent, repair converges to a clean log"
    arb_script
    (fun (script, torn) ->
      let disk = Shared_disk.create () in
      let t = Ledger.attach disk in
      List.iter (fun nth -> Ledger.arm_torn t ~nth) torn;
      List.iter
        (fun (op, phase) ->
          match Ledger.append t phase op with
          | `Appended _ -> ()
          | `Fenced -> QCheck.Test.fail_report "trusted append fenced")
        script;
      let r1 = Ledger.replay disk in
      let r2 = Ledger.replay disk in
      if r1 <> r2 then QCheck.Test.fail_report "replay mutated the log";
      let (_ : int) = Ledger.repair t in
      let r3 = Ledger.replay disk in
      if r3.Ledger.torn_seqs <> [] then
        QCheck.Test.fail_report "repair left torn records";
      if r3.Ledger.next_seq <> List.length script then
        QCheck.Test.fail_report "repair changed the log length";
      (* With a live mirror every record is restored verbatim, so the
         repaired fold equals a never-torn run's fold. *)
      let disk' = Shared_disk.create () in
      let t' = Ledger.attach disk' in
      List.iter
        (fun (op, phase) ->
          match Ledger.append t' phase op with
          | `Appended _ -> ()
          | `Fenced -> QCheck.Test.fail_report "trusted append fenced")
        script;
      let clean = Ledger.replay disk' in
      if r3.Ledger.ownership <> clean.Ledger.ownership then
        QCheck.Test.fail_report "repaired fold diverges from clean fold";
      true)

(* qcheck: repair is idempotent — once the log scans clean, a second
   pass rewrites nothing and leaves the image untouched. *)
let prop_repair_idempotent =
  QCheck.Test.make ~count:60
    ~name:"ledger: repair idempotent — second pass rewrites nothing" arb_script
    (fun (script, torn) ->
      let disk = Shared_disk.create () in
      let t = Ledger.attach disk in
      List.iter (fun nth -> Ledger.arm_torn t ~nth) torn;
      List.iter
        (fun (op, phase) ->
          match Ledger.append t phase op with
          | `Appended _ -> ()
          | `Fenced -> QCheck.Test.fail_report "trusted append fenced")
        script;
      let (_ : int) = Ledger.repair t in
      let after_first = Ledger.replay disk in
      if Ledger.repair t <> 0 then
        QCheck.Test.fail_report "second repair rewrote blocks";
      if Ledger.replay disk <> after_first then
        QCheck.Test.fail_report "second repair changed the log";
      true)

let arb_double_torn =
  QCheck.make
    ~print:(fun ((s1, s2, nth2) :
                  (Ledger.op * Ledger.phase) list
                  * (Ledger.op * Ledger.phase) list
                  * int) ->
      Printf.sprintf "%d ops (torn tail), restart, %d ops (torn at %d)"
        (List.length s1) (List.length s2) nth2)
    QCheck.Gen.(
      let script =
        list_size (int_range 1 12)
          (pair arb_op (oneofl [ Ledger.Intent; Ledger.Commit ]))
      in
      triple script script (int_bound 11))

(* qcheck: replay converges under *double* torn writes — a torn tail,
   a whole-cluster restart whose first repair can only tombstone it
   (no surviving mirror), then a second torn append through the
   restarted handle, then repair again.  The final log must scan
   clean, keep every slot occupied, and be a fixed point of repair. *)
let prop_double_torn_converges =
  QCheck.Test.make ~count:60
    ~name:"ledger: replay converges after torn tail + second torn append"
    arb_double_torn
    (fun (script1, script2, nth2) ->
      let app t script =
        List.iter
          (fun (op, phase) ->
            match Ledger.append t phase op with
            | `Appended _ -> ()
            | `Fenced -> QCheck.Test.fail_report "trusted append fenced")
          script
      in
      let disk = Shared_disk.create () in
      let t1 = Ledger.attach disk in
      (* First fault: the tail of the pre-crash log is torn. *)
      Ledger.arm_torn t1 ~nth:(List.length script1 - 1);
      app t1 script1;
      (* Whole-cluster restart: the fresh handle never saw the torn
         record, so this partial repair tombstones the tail rather
         than restoring it. *)
      let t2 = Ledger.attach disk in
      if Ledger.repair t2 <> 1 then
        QCheck.Test.fail_report "restart repair should tombstone the torn tail";
      (* Second fault: another append tears mid-flight through the
         restarted handle, which *does* hold a mirror for it. *)
      Ledger.arm_torn t2 ~nth:(min nth2 (List.length script2 - 1));
      app t2 script2;
      if Ledger.repair t2 <> 1 then
        QCheck.Test.fail_report "second repair should restore from the mirror";
      let rep = Ledger.replay disk in
      if rep.Ledger.torn_seqs <> [] then
        QCheck.Test.fail_report "double repair left torn records";
      if rep.Ledger.next_seq <> List.length script1 + List.length script2 then
        QCheck.Test.fail_report "repair changed the log length";
      if Ledger.repair t2 <> 0 then
        QCheck.Test.fail_report "repair did not reach a fixed point";
      if Ledger.replay disk <> rep then
        QCheck.Test.fail_report "replay mutated the log";
      true)

let suite =
  [
    Alcotest.test_case "codec: roundtrip" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec: corruption rejected" `Quick
      test_codec_rejects_corruption;
    Alcotest.test_case "recovery: roll forward and back" `Quick
      test_roll_forward_and_back;
    Alcotest.test_case "attach: restart resumes the sequence" `Quick
      test_attach_resumes_sequence;
    Alcotest.test_case "torn write: detected and repaired" `Quick
      test_torn_write_detected_and_repaired;
    Alcotest.test_case "torn write: tombstoned without a mirror" `Quick
      test_torn_without_mirror_tombstoned;
    Alcotest.test_case "fenced writer rejected" `Quick
      test_fenced_writer_rejected;
    Alcotest.test_case "block ranges disjoint" `Quick
      test_block_ranges_disjoint;
    QCheck_alcotest.to_alcotest prop_replay_idempotent_and_repair_converges;
    QCheck_alcotest.to_alcotest prop_repair_idempotent;
    QCheck_alcotest.to_alcotest prop_double_torn_converges;
  ]
