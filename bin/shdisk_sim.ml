(* shdisk-sim: reproduce the experiments of Wu & Burns, "Handling
   Heterogeneity in Shared-Disk File Systems" (SC'03), from the command
   line.

     shdisk-sim list
     shdisk-sim run fig6 [--quick] [--csv out.csv] [--summary]
     shdisk-sim trace --kind dfs --out trace.txt *)

open Cmdliner

let setup_logs () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Warning)

let list_cmd =
  let doc = "List the reproducible experiments." in
  let run () =
    List.iter print_endline Experiments.Figures.all_ids
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "Run one experiment and print its series and summary." in
  let id =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EXPERIMENT" ~doc:"Experiment id (see `list').")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Scale the workload down ~10x.")
  in
  let summary =
    Arg.(value & flag & info [ "summary" ] ~doc:"Print only summary lines.")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the series as CSV.")
  in
  let minutes =
    Arg.(
      value & opt float 60.0
      & info [ "minutes" ] ~docv:"M" ~doc:"Cap table rows at M minutes.")
  in
  let run id quick summary csv minutes =
    setup_logs ();
    match Experiments.Figures.by_id id with
    | None ->
      Printf.eprintf "unknown experiment %s; try `shdisk_sim list'\n" id;
      exit 1
    | Some build ->
      let figure = build ~quick () in
      if summary then
        Format.printf "%a@." Experiments.Report.pp_summary figure
      else
        Format.printf "%a@."
          (Experiments.Report.pp_figure ~max_minutes:minutes)
          figure;
      Option.iter
        (fun path ->
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              output_string oc (Experiments.Report.figure_to_csv figure));
          Printf.printf "wrote %s\n" path)
        csv
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ id $ quick $ summary $ csv $ minutes)

let trace_cmd =
  let doc = "Generate a workload trace file." in
  let kind =
    Arg.(
      value
      & opt (enum [ ("dfs", `Dfs); ("synthetic", `Synthetic) ]) `Dfs
      & info [ "kind" ] ~docv:"KIND" ~doc:"dfs or synthetic.")
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Output path.")
  in
  let seed =
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc:"Generator seed.")
  in
  let run kind out seed =
    let trace =
      match kind with
      | `Dfs ->
        Workload.Dfs_like.generate
          { Workload.Dfs_like.default_config with seed }
      | `Synthetic ->
        Workload.Synthetic.generate
          { Workload.Synthetic.default_config with seed }
    in
    Workload.Trace_io.save trace ~path:out;
    Printf.printf "wrote %d records (%.0f s, %d file sets) to %s\n"
      (Workload.Trace.length trace)
      (Workload.Trace.duration trace)
      (List.length (Workload.Trace.file_sets trace))
      out
  in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const run $ kind $ out $ seed)

let validate_cmd =
  let doc = "Verify the paper's headline claims against fresh runs." in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Scale the workloads down ~10x.")
  in
  let run quick =
    setup_logs ();
    let checks = Experiments.Validate.run ~quick () in
    Format.printf "%a@." Experiments.Validate.pp checks;
    if not (Experiments.Validate.all_passed checks) then exit 1
  in
  Cmd.v (Cmd.info "validate" ~doc) Term.(const run $ quick)

let motivation_cmd =
  let doc =
    "Run the Section-2 motivation experiment (metadata imbalance starves the \
     SAN)."
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Scale the workload down ~10x.")
  in
  let run quick =
    setup_logs ();
    List.iter
      (fun r -> Format.printf "%a@." Experiments.Motivation.pp_result r)
      (Experiments.Motivation.experiment ~quick ())
  in
  Cmd.v (Cmd.info "motivation" ~doc) Term.(const run $ quick)

let () =
  let doc =
    "Reproduction of `Handling Heterogeneity in Shared-Disk File Systems' \
     (SC'03)"
  in
  let info = Cmd.info "shdisk_sim" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; trace_cmd; validate_cmd; motivation_cmd ]))
