(* shdisk-sim: reproduce the experiments of Wu & Burns, "Handling
   Heterogeneity in Shared-Disk File Systems" (SC'03), from the command
   line.

     shdisk-sim list
     shdisk-sim run fig6 [--quick] [--jobs N] [--csv out.csv] [--summary]
                         [--trace out.json] [--trace-jsonl out.jsonl]
                         [--metrics]
     shdisk-sim trace --kind dfs --out trace.txt *)

open Cmdliner

let setup_logs level =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level level

(* --verbosity, shared by every command that runs simulations.  The
   term also installs the reporter, so evaluating it is the logging
   setup. *)
let verbosity_t =
  let levels =
    [
      ("quiet", None);
      ("error", Some Logs.Error);
      ("warning", Some Logs.Warning);
      ("info", Some Logs.Info);
      ("debug", Some Logs.Debug);
    ]
  in
  let arg =
    Arg.(
      value
      & opt (enum levels) (Some Logs.Warning)
      & info [ "verbosity" ] ~docv:"LEVEL"
          ~doc:"Log level: quiet, error, warning, info or debug.")
  in
  Term.(const setup_logs $ arg)

let list_cmd =
  let doc = "List the reproducible experiments." in
  let run () =
    List.iter print_endline (Experiments.Figures.all_ids @ [ "fig6-stream" ])
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* The one rendering for every "unknown name" error path — experiment
   ids, fault plans, anything resolved through a registry — so each
   resolver lists exactly the names it accepts and the messages cannot
   drift apart in style. *)
let unknown_name ~kind ~name ~known =
  Printf.sprintf "unknown %s %S; registered %ss are: %s" kind name kind
    (String.concat ", " known)

(* Observability options of `run': where to write traces and whether
   to collect and print metrics. *)
type obs_options = {
  trace_chrome : string option;
  trace_jsonl : string option;
  metrics : bool;
  metrics_json : string option;
  telemetry_json : string option;
}

let obs_options_t =
  let trace_chrome =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace_event file (load it in chrome://tracing \
             or ui.perfetto.dev).")
  in
  let trace_jsonl =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-jsonl" ] ~docv:"FILE"
          ~doc:"Write the structured trace as one JSON event per line.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Collect and print the metrics snapshot of every run.")
  in
  let metrics_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-json" ] ~docv:"FILE"
          ~doc:
            "Collect metrics and write every run's snapshot to FILE as one \
             JSON document (implies metric collection).")
  in
  let telemetry_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry-json" ] ~docv:"FILE"
          ~doc:
            "Collect per-entity telemetry (per-server occupancy, queue \
             depth and latency series, request rate, heavy-hitter file \
             sets) and write every run's snapshot to FILE as JSON.")
  in
  Term.(
    const (fun trace_chrome trace_jsonl metrics metrics_json telemetry_json ->
        { trace_chrome; trace_jsonl; metrics; metrics_json; telemetry_json })
    $ trace_chrome $ trace_jsonl $ metrics $ metrics_json $ telemetry_json)

let obs_ctx_of_options opts =
  let sinks =
    List.filter_map
      (fun x -> x)
      [
        Option.map Obs.Sink.chrome_file opts.trace_chrome;
        Option.map Obs.Sink.jsonl_file opts.trace_jsonl;
      ]
  in
  let metrics =
    if opts.metrics || opts.metrics_json <> None then
      Some (Obs.Metrics.create ())
    else None
  in
  let telemetry =
    Option.map (fun _ -> Obs.Telemetry.create ()) opts.telemetry_json
  in
  if sinks = [] && metrics = None && telemetry = None then None
  else Some (Obs.Ctx.create ~sinks ?metrics ?telemetry ())

(* [--metrics-json] / [--telemetry-json] payload: one entry per run, so
   multi-policy figures keep their runs distinguishable. *)
let write_runs_json path figure ~field_name ~snapshot =
  let runs =
    List.filter_map
      (fun r ->
        Option.map
          (fun j ->
            Obs.Json.Obj
              [
                ("label", Obs.Json.Str r.Experiments.Runner.label);
                ("policy", Obs.Json.Str r.Experiments.Runner.policy_name);
                (field_name, j);
              ])
          (snapshot r))
      figure.Experiments.Figures.results
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (Obs.Json.to_string (Obs.Json.Obj [ ("runs", Obs.Json.List runs) ]));
      output_char oc '\n');
  Printf.printf "wrote %s\n" path

let run_cmd =
  let doc = "Run one experiment and print its series and summary." in
  let id =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EXPERIMENT" ~doc:"Experiment id (see `list').")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Scale the workload down ~10x.")
  in
  let summary =
    Arg.(value & flag & info [ "summary" ] ~doc:"Print only summary lines.")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the series as CSV.")
  in
  let minutes =
    Arg.(
      value & opt float 60.0
      & info [ "minutes" ] ~docv:"M" ~doc:"Cap table rows at M minutes.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Fan the experiment's independent simulations out over N \
             domains.  Output is bit-identical to --jobs 1; only \
             wall-clock time changes.")
  in
  let requests =
    Arg.(
      value
      & opt (some int) None
      & info [ "requests" ] ~docv:"N"
          ~doc:
            "Scale the workload to N requests (fig6-stream only).  Offered \
             load is held constant, so only memory and wall time change \
             with the count.")
  in
  let run () id quick jobs summary csv minutes requests obs_opts =
    let build =
      if id = "fig6-stream" then
        Some (fun ?obs () -> Experiments.Figures.fig6_stream ?requests ?obs ())
      else begin
        (match requests with
        | Some _ ->
          Logs.err (fun m ->
              m "--requests applies only to fig6-stream (got %s)" id);
          exit 1
        | None -> ());
        Option.map
          (fun
            (b :
              ?quick:bool ->
              ?jobs:int ->
              ?obs:Obs.Ctx.t ->
              unit ->
              Experiments.Figures.figure)
            ?obs
            ()
          -> b ~quick ~jobs ?obs ())
          (Experiments.Figures.by_id id)
      end
    in
    match build with
    | None ->
      Logs.err (fun m ->
          m "%s"
            (unknown_name ~kind:"experiment" ~name:id
               ~known:(Experiments.Figures.all_ids @ [ "fig6-stream" ])));
      exit 1
    | Some build ->
      let ctx =
        try obs_ctx_of_options obs_opts
        with Sys_error msg ->
          Logs.err (fun m -> m "cannot open trace file: %s" msg);
          exit 1
      in
      let figure =
        Fun.protect
          ~finally:(fun () -> Option.iter Obs.Ctx.close ctx)
          (fun () -> build ?obs:ctx ())
      in
      if summary then
        Format.printf "%a@." Experiments.Report.pp_summary figure
      else
        Format.printf "%a@."
          (Experiments.Report.pp_figure ~max_minutes:minutes)
          figure;
      if obs_opts.metrics then
        List.iter
          (fun r ->
            match r.Experiments.Runner.metrics with
            | None -> ()
            | Some snapshot ->
              Format.printf "@.=== metrics: %s / %s ===@.%a"
                r.Experiments.Runner.label r.Experiments.Runner.policy_name
                Obs.Metrics.pp_snapshot snapshot)
          figure.Experiments.Figures.results;
      Option.iter
        (fun path ->
          write_runs_json path figure ~field_name:"metrics" ~snapshot:(fun r ->
              Option.map Obs.Metrics.snapshot_to_json
                r.Experiments.Runner.metrics))
        obs_opts.metrics_json;
      Option.iter
        (fun path ->
          write_runs_json path figure ~field_name:"telemetry"
            ~snapshot:(fun r ->
              Option.map Obs.Telemetry.snapshot_to_json
                r.Experiments.Runner.telemetry))
        obs_opts.telemetry_json;
      Option.iter
        (fun path -> Printf.printf "wrote Chrome trace %s\n" path)
        obs_opts.trace_chrome;
      Option.iter
        (fun path -> Printf.printf "wrote JSONL trace %s\n" path)
        obs_opts.trace_jsonl;
      Option.iter
        (fun path ->
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              output_string oc (Experiments.Report.figure_to_csv figure));
          Printf.printf "wrote %s\n" path)
        csv
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ verbosity_t $ id $ quick $ jobs $ summary $ csv $ minutes
      $ requests $ obs_options_t)

let trace_cmd =
  let doc = "Generate a workload trace file." in
  let kind =
    Arg.(
      value
      & opt (enum [ ("dfs", `Dfs); ("synthetic", `Synthetic) ]) `Dfs
      & info [ "kind" ] ~docv:"KIND" ~doc:"dfs or synthetic.")
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Output path.")
  in
  let seed =
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc:"Generator seed.")
  in
  let run kind out seed =
    let trace =
      match kind with
      | `Dfs ->
        Workload.Dfs_like.generate
          { Workload.Dfs_like.default_config with seed }
      | `Synthetic ->
        Workload.Synthetic.generate
          { Workload.Synthetic.default_config with seed }
    in
    Workload.Trace_io.save trace ~path:out;
    Printf.printf "wrote %d records (%.0f s, %d file sets) to %s\n"
      (Workload.Trace.length trace)
      (Workload.Trace.duration trace)
      (List.length (Workload.Trace.file_sets trace))
      out
  in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const run $ kind $ out $ seed)

let validate_cmd =
  let doc = "Verify the paper's headline claims against fresh runs." in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Scale the workloads down ~10x.")
  in
  let run () quick =
    let checks = Experiments.Validate.run ~quick () in
    Format.printf "%a@." Experiments.Validate.pp checks;
    if not (Experiments.Validate.all_passed checks) then exit 1
  in
  Cmd.v (Cmd.info "validate" ~doc) Term.(const run $ verbosity_t $ quick)

(* Options shared by `chaos' and `fsck' (fsck audits the ledger a
   chaos run leaves behind, so it takes the same knobs). *)
let chaos_seed_t =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Fault-plan and workload seed.  Equal seeds reproduce the run \
           byte for byte.")

let chaos_policy_t =
  let specs =
    [
      ("anu", Experiments.Scenario.Anu Placement.Anu.default_config);
      ("simple-random", Experiments.Scenario.Simple_random);
      ("round-robin", Experiments.Scenario.Round_robin);
      ( "round-robin-rebalance",
        Experiments.Scenario.Round_robin_rebalance );
      ("prescient", Experiments.Scenario.Prescient);
      ("consistent-hash", Experiments.Scenario.Consistent_hash);
    ]
  in
  Arg.(
    value
    & opt (enum specs) (Experiments.Scenario.Anu Placement.Anu.default_config)
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:
          "Placement policy under test: anu, simple-random, round-robin, \
           round-robin-rebalance (round-robin with the opt-in \
           post-recovery re-deal), prescient or consistent-hash.")

let chaos_duration_t =
  Arg.(
    value
    & opt (enum [ ("short", true); ("full", false) ]) false
    & info [ "duration" ] ~docv:"D"
        ~doc:"short (CI smoke, ~10x smaller workload) or full.")

let chaos_plan_t =
  (* Resolved through the library's plan registry rather than a
     hard-coded enum, so an unknown name reports exactly the plans that
     exist — and a mix added to the registry is picked up here with no
     CLI change. *)
  let plan_conv =
    let parse s =
      match Experiments.Chaos.plan_kind_of_name s with
      | Some kind -> Ok kind
      | None ->
        Error
          (`Msg
             (unknown_name ~kind:"fault plan" ~name:s
                ~known:Experiments.Chaos.plan_names))
    in
    let print ppf kind =
      let name, _ =
        List.find (fun (_, k) -> k = kind) Experiments.Chaos.plan_kinds
      in
      Format.pp_print_string ppf name
    in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt plan_conv `Default
    & info [ "plan" ] ~docv:"PLAN"
        ~doc:
          "Stock fault mix: default (crashes, report loss, mid-move \
           crashes, a disk stall), partition (the delegate loses the \
           cluster network mid-move, a second server loses its disk path, \
           one ledger append tears) or domain (correlated whole-rack \
           faults over the two-rack paper topology: rack0 is partitioned \
           and heals, then rack1 crashes whole and recovers, with the \
           domain-spread and collateral invariants armed).")

(* Every fault spec kind a plan can carry, straight from the library so
   --help can never drift from the implementation. *)
let fault_kinds_man =
  `S "FAULT SPEC KINDS"
  :: `P
       "A $(b,Fault.Plan) is a seed plus a list of fault specs; the stock \
        mixes above combine these.  Every kind a plan can schedule:"
  :: List.map
       (fun (name, desc) -> `I (Printf.sprintf "$(b,%s)" name, desc))
       Fault.Plan.spec_kinds

let chaos_cmd =
  let doc =
    "Run a seeded fault-injection campaign with continuous invariant \
     checking and print the survival summary."
  in
  let run () seed spec quick plan_kind =
    let summary = Experiments.Chaos.run ~quick ~plan_kind ~seed ~spec () in
    Format.printf "%a" Experiments.Chaos.pp summary;
    if not summary.Experiments.Chaos.survived then exit 1
  in
  Cmd.v (Cmd.info "chaos" ~doc ~man:fault_kinds_man)
    Term.(
      const run $ verbosity_t $ chaos_seed_t $ chaos_policy_t
      $ chaos_duration_t $ chaos_plan_t)

let explore_cmd =
  let doc =
    "Sweep every disk-write crash point of a seeded faulty run: crash (or \
     tear) the whole cluster at each write, recover solely from the \
     shared-disk image, resume the surviving workload, and audit.  Exits 1 \
     on any violation; the report is byte-reproducible at a fixed seed."
  in
  let budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"N"
          ~doc:
            "Probe at most N crash points, sampled reproducibly from the \
             full sweep (default: run every probe).")
  in
  let wide =
    Arg.(
      value & flag
      & info [ "wide" ]
          ~doc:
            "Use the larger nightly workload shape instead of the small \
             full-sweep one; pair with --budget.")
  in
  let run () seed spec plan_kind budget wide =
    let report =
      Experiments.Explore.sweep ?budget ~wide ~spec ~plan_kind ~seed ()
    in
    Format.printf "%a" Experiments.Explore.pp report;
    if not report.Experiments.Explore.survived then exit 1
  in
  Cmd.v (Cmd.info "explore" ~doc ~man:fault_kinds_man)
    Term.(
      const run $ verbosity_t $ chaos_seed_t $ chaos_policy_t $ chaos_plan_t
      $ budget $ wide)

let fsck_cmd =
  let doc =
    "Run a seeded chaos campaign, then replay the on-disk ownership ledger \
     and audit it against in-memory ownership."
  in
  let run () seed spec quick plan_kind =
    let summary = Experiments.Chaos.run ~quick ~plan_kind ~seed ~spec () in
    let r = summary.Experiments.Chaos.fsck in
    Format.printf "fsck: %d ledger record(s) replayed@."
      r.Sharedfs.Cluster.records;
    Format.printf
      "  torn during run: %d, repaired during run: %d, still torn: %d@."
      summary.Experiments.Chaos.torn_writes
      summary.Experiments.Chaos.torn_repaired r.Sharedfs.Cluster.torn_found;
    (match r.Sharedfs.Cluster.divergent with
    | [] -> Format.printf "  ledger and in-memory ownership agree@."
    | ds ->
      Format.printf "  %d divergence(s):@." (List.length ds);
      List.iter (fun d -> Format.printf "    %s@." d) ds);
    let ok = summary.Experiments.Chaos.survived && r.Sharedfs.Cluster.clean in
    Format.printf "  %s@."
      (if r.Sharedfs.Cluster.clean then "CLEAN" else "DIVERGENT");
    if not ok then exit 1
  in
  Cmd.v (Cmd.info "fsck" ~doc ~man:fault_kinds_man)
    Term.(
      const run $ verbosity_t $ chaos_seed_t $ chaos_policy_t
      $ chaos_duration_t $ chaos_plan_t)

let trace_report_cmd =
  let doc =
    "Analyze a JSONL trace offline: latency attribution (queue vs service \
     vs move-induced buffering), hot servers and file sets, the \
     fault/fence timeline, and a causal slice for every invariant \
     violation."
  in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE"
          ~doc:"JSONL trace file (written by `run --trace-jsonl').")
  in
  let from_ =
    Arg.(
      value
      & opt (some float) None
      & info [ "from" ] ~docv:"T"
          ~doc:"Window start, virtual seconds (default: trace start).")
  in
  let to_ =
    Arg.(
      value
      & opt (some float) None
      & info [ "to" ] ~docv:"T"
          ~doc:"Window end, virtual seconds (default: trace end).")
  in
  let top =
    Arg.(
      value & opt int 5
      & info [ "top" ] ~docv:"K"
          ~doc:"Rank the top K servers and file sets (default 5).")
  in
  let run () file from_ to_ top =
    if top < 0 then begin
      Logs.err (fun m -> m "--top must be non-negative (got %d)" top);
      exit 1
    end;
    match Experiments.Forensics.load file with
    | Error msg ->
      Logs.err (fun m -> m "cannot load trace: %s" msg);
      exit 1
    | Ok trace ->
      let report =
        Experiments.Forensics.analyze ?from_ ?until:to_ ~top ~path:file trace
      in
      Format.printf "%a" Experiments.Forensics.pp_report report
  in
  Cmd.v (Cmd.info "trace-report" ~doc)
    Term.(const run $ verbosity_t $ file $ from_ $ to_ $ top)

let motivation_cmd =
  let doc =
    "Run the Section-2 motivation experiment (metadata imbalance starves the \
     SAN)."
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Scale the workload down ~10x.")
  in
  let run () quick =
    List.iter
      (fun r -> Format.printf "%a@." Experiments.Motivation.pp_result r)
      (Experiments.Motivation.experiment ~quick ())
  in
  Cmd.v (Cmd.info "motivation" ~doc) Term.(const run $ verbosity_t $ quick)

let () =
  let doc =
    "Reproduction of `Handling Heterogeneity in Shared-Disk File Systems' \
     (SC'03)"
  in
  let info = Cmd.info "shdisk-sim" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; run_cmd; trace_cmd; trace_report_cmd; validate_cmd;
            chaos_cmd; explore_cmd; fsck_cmd; motivation_cmd;
          ]))
